"""Domain-name parsing and the sensitive-subdomain matcher.

The pipeline reasons about three layers of a fully-qualified domain name
(FQDN): the *public suffix* (e.g. ``gov.kg``), the *registered domain* one
label below it (``mfa.gov.kg``), and the *subdomain* labels to its left
(``mail``).  Real deployments consult the Mozilla Public Suffix List; we
embed the subset of suffixes the study's TLDs need (plus common generic
ones) which is exactly what the methodology requires.

``SENSITIVE_SUBSTRINGS`` is the paper's hand-compiled list (Section 4.3) of
substrings that mark a subdomain as credential-bearing and therefore a
worthwhile hijack target (mail, vpn, owa, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

# Multi-label public suffixes relevant to the study TLDs, plus generic
# second-level suffixes used by the scenarios.  Single-label TLDs are
# handled by the fallback rule (last label is always a public suffix).
_MULTI_LABEL_SUFFIXES: frozenset[str] = frozenset(
    {
        "gov.ae",
        "gov.al",
        "com.cy",
        "gov.cy",
        "gov.eg",
        "gov.gh",
        "gov.iq",
        "gov.jo",
        "gov.kg",
        "gov.kw",
        "com.kw",
        "gov.kz",
        "gov.lb",
        "com.lb",
        "gov.lt",
        "gov.lv",
        "gov.ly",
        "gov.ma",
        "gov.mm",
        "gov.pl",
        "gov.sa",
        "gov.tm",
        "gov.tr",
        "gov.vn",
        "co.uk",
        "ac.uk",
        "gov.uk",
        "com.au",
        "co.jp",
        "com.br",
        "com.cn",
        "gov.cn",
    }
)

# Substring list from Section 4.3 of the paper, verbatim.
SENSITIVE_SUBSTRINGS: tuple[str, ...] = (
    "secure",
    "mail",
    "remote",
    "login",
    "logon",
    "portal",
    "admin",
    "owa",
    "vpn",
    "connect",
    "cloud",
    "signin",
    "citrix",
    "box",
    "account",
    "intranet",
    "imap",
    "smtp",
    "pop",
    "ftp",
    "api",
)


def _normalize(name: str) -> str:
    name = name.strip().rstrip(".").lower()
    if not name:
        raise ValueError("empty domain name")
    for label in name.split("."):
        if not label:
            raise ValueError(f"empty label in domain name: {name!r}")
        if len(label) > 63:
            raise ValueError(f"label too long in domain name: {name!r}")
    if len(name) > 253:
        raise ValueError(f"domain name too long: {name!r}")
    return name


def public_suffix(name: str) -> str:
    """Return the public suffix of ``name`` (e.g. ``gov.kg`` or ``com``)."""
    name = _normalize(name)
    labels = name.split(".")
    if len(labels) >= 2 and ".".join(labels[-2:]) in _MULTI_LABEL_SUFFIXES:
        return ".".join(labels[-2:])
    return labels[-1]


def registered_domain(name: str) -> str:
    """Return the registrable domain: one label below the public suffix.

    For a name that *is* a public suffix (or a bare TLD) the name itself is
    returned, mirroring how the paper treats apex-level scan entries.
    """
    name = _normalize(name)
    suffix = public_suffix(name)
    if name == suffix:
        return name
    prefix_labels = name[: -(len(suffix) + 1)].split(".")
    return f"{prefix_labels[-1]}.{suffix}"


def subdomain_labels(name: str) -> tuple[str, ...]:
    """Labels of ``name`` to the left of its registered domain."""
    name = _normalize(name)
    base = registered_domain(name)
    if name == base:
        return ()
    return tuple(name[: -(len(base) + 1)].split("."))


def sensitive_substring(name: str) -> str | None:
    """Return the first sensitive substring matched by the subdomain part.

    Only the subdomain labels are examined: ``mail.mfa.gov.kg`` matches
    ``mail`` but ``mailchimp.com`` (no subdomain) does not.  Names whose
    registered-domain label itself is sensitive (e.g. ``webmail.gov.cy``,
    where ``gov.cy`` is the suffix) are matched as well, since the paper
    flags those (Table 2 lists webmail.gov.cy with an empty Sub column).
    """
    name = _normalize(name)
    labels = subdomain_labels(name)
    base = registered_domain(name)
    base_label = base.split(".")[0]
    candidates = list(labels)
    if base != public_suffix(name):
        candidates.append(base_label)
    for label in candidates:
        for substring in SENSITIVE_SUBSTRINGS:
            if substring in label:
                return substring
    return None


def is_sensitive_name(name: str) -> bool:
    """True if any subdomain (or registrable) label matches the list."""
    return sensitive_substring(name) is not None


@dataclass(frozen=True, slots=True)
class DomainName:
    """A parsed, normalized FQDN with cached structural accessors."""

    fqdn: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "fqdn", _normalize(self.fqdn))

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(self.fqdn.split("."))

    @property
    def public_suffix(self) -> str:
        return public_suffix(self.fqdn)

    @property
    def registered_domain(self) -> str:
        return registered_domain(self.fqdn)

    @property
    def subdomain(self) -> str:
        return ".".join(subdomain_labels(self.fqdn))

    @property
    def is_registered_domain(self) -> bool:
        return self.fqdn == self.registered_domain

    @property
    def is_sensitive(self) -> bool:
        return is_sensitive_name(self.fqdn)

    def is_subdomain_of(self, other: "str | DomainName") -> bool:
        other_fqdn = other.fqdn if isinstance(other, DomainName) else _normalize(other)
        return self.fqdn == other_fqdn or self.fqdn.endswith("." + other_fqdn)

    def child(self, label: str) -> "DomainName":
        return DomainName(f"{label}.{self.fqdn}")

    def __str__(self) -> str:
        return self.fqdn
