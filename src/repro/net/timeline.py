"""Study calendar: weekly scans, six-month periods, and date intervals.

The paper analyzes January 2017 through March 2021, broken into nine
six-month periods, against weekly Censys scans.  Everything downstream
(deployment maps, transient thresholds, the 20 %-missing-scans visibility
check) is expressed against this calendar, so it lives here in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta
from typing import Iterator

STUDY_START = date(2017, 1, 1)
STUDY_END = date(2021, 3, 31)

#: The paper's three-month transient threshold, "~12 scans".
TRANSIENT_MAX_DAYS = 91
TRANSIENT_MAX_SCANS = 12


@dataclass(frozen=True, slots=True)
class DateInterval:
    """A closed date interval ``[start, end]``; ``end=None`` means open."""

    start: date
    end: date | None = None

    def __post_init__(self) -> None:
        if self.end is not None and self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")

    def contains(self, day: date) -> bool:
        if day < self.start:
            return False
        return self.end is None or day <= self.end

    def overlaps(self, other: "DateInterval") -> bool:
        if other.end is not None and other.end < self.start:
            return False
        if self.end is not None and self.end < other.start:
            return False
        return True

    @property
    def days(self) -> int | None:
        """Length in days (inclusive), or None for an open interval."""
        if self.end is None:
            return None
        return (self.end - self.start).days + 1

    def clipped(self, start: date, end: date) -> "DateInterval | None":
        """Intersection with ``[start, end]``, or None if disjoint."""
        new_start = max(self.start, start)
        new_end = end if self.end is None else min(self.end, end)
        if new_end < new_start:
            return None
        return DateInterval(new_start, new_end)

    def __str__(self) -> str:
        end = self.end.isoformat() if self.end else "..."
        return f"[{self.start.isoformat()} .. {end}]"


@dataclass(frozen=True, slots=True)
class Period:
    """One of the study's six-month analysis periods."""

    index: int
    start: date
    end: date

    @property
    def label(self) -> str:
        half = 1 if self.start.month <= 6 else 2
        return f"{self.start.year}H{half}"

    def contains(self, day: date) -> bool:
        return self.start <= day <= self.end

    def interval(self) -> DateInterval:
        return DateInterval(self.start, self.end)

    def __str__(self) -> str:
        return self.label


def _half_bounds(year: int, half: int) -> tuple[date, date]:
    if half == 1:
        return date(year, 1, 1), date(year, 6, 30)
    return date(year, 7, 1), date(year, 12, 31)


def study_periods(start: date = STUDY_START, end: date = STUDY_END) -> tuple[Period, ...]:
    """Six-month periods covering ``[start, end]``; the last may be partial.

    For the paper's window this yields nine periods: 2017H1 ... 2021H1
    (the final one truncated to March 2021).
    """
    periods: list[Period] = []
    year, half = start.year, 1 if start.month <= 6 else 2
    index = 0
    while True:
        half_start, half_end = _half_bounds(year, half)
        period_start = max(half_start, start)
        period_end = min(half_end, end)
        if period_start > end:
            break
        periods.append(Period(index=index, start=period_start, end=period_end))
        index += 1
        if half == 1:
            half = 2
        else:
            half = 1
            year += 1
    return tuple(periods)


def period_of(day: date, periods: tuple[Period, ...] | None = None) -> Period:
    """Return the study period containing ``day``."""
    for period in periods or study_periods():
        if period.contains(day):
            return period
    raise ValueError(f"{day.isoformat()} is outside the study window")


def scan_dates_every(
    start: date, end: date, every_days: int
) -> tuple[date, ...]:
    """Scan dates from ``start`` through ``end`` at a fixed cadence.

    The study era was weekly (``every_days=7``); Censys moved to daily
    scans in April 2021 (paper footnote 9), i.e. ``every_days=1``.
    """
    if end < start:
        raise ValueError("scan window ends before it starts")
    if every_days < 1:
        raise ValueError("cadence must be at least one day")
    dates: list[date] = []
    day = start
    while day <= end:
        dates.append(day)
        day += timedelta(days=every_days)
    return tuple(dates)


def weekly_scan_dates(start: date = STUDY_START, end: date = STUDY_END) -> tuple[date, ...]:
    """Weekly scan dates from ``start`` through ``end`` (inclusive)."""
    return scan_dates_every(start, end, 7)


def scan_dates_in(period: Period, scan_dates: tuple[date, ...]) -> tuple[date, ...]:
    """Subset of ``scan_dates`` falling inside ``period``."""
    return tuple(d for d in scan_dates if period.contains(d))


def days_between(first: date, last: date) -> int:
    """Inclusive span in days between two dates."""
    return abs((last - first).days) + 1


def iter_days(start: date, end: date) -> Iterator[date]:
    """Yield every date from ``start`` through ``end`` inclusive."""
    day = start
    while day <= end:
        yield day
        day += timedelta(days=1)
