"""IPv4 address and prefix arithmetic.

The simulator and the IP-intelligence substrates (prefix-to-AS mapping,
geolocation) work with plain dotted-quad strings at their edges and with
integers internally.  These helpers are deliberately tiny and allocation
free so that longest-prefix matching over large scan datasets stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass


def ip_to_int(ip: str) -> int:
    """Convert a dotted-quad IPv4 address to its 32-bit integer value."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {ip!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to a dotted-quad IPv4 address."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"value out of IPv4 range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, slots=True)
class IPv4Prefix:
    """A CIDR prefix, e.g. ``IPv4Prefix.parse("94.103.88.0/21")``."""

    network: int
    length: int

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        try:
            base, length_text = text.split("/")
        except ValueError as exc:
            raise ValueError(f"not a CIDR prefix: {text!r}") from exc
        length = int(length_text)
        if not 0 <= length <= 32:
            raise ValueError(f"prefix length out of range: {text!r}")
        network = ip_to_int(base) & cls._mask(length)
        return cls(network=network, length=length)

    @staticmethod
    def _mask(length: int) -> int:
        return 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF

    @property
    def mask(self) -> int:
        return self._mask(self.length)

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def contains(self, ip: str | int) -> bool:
        value = ip if isinstance(ip, int) else ip_to_int(ip)
        return (value & self.mask) == self.network

    def address_at(self, offset: int) -> str:
        """Return the dotted-quad address ``offset`` into the prefix."""
        if not 0 <= offset < self.size:
            raise IndexError(f"offset {offset} outside /{self.length} prefix")
        return int_to_ip(self.network + offset)

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


def ip_in_prefix(ip: str, prefix: str) -> bool:
    """Convenience wrapper: is ``ip`` inside CIDR ``prefix``?"""
    return IPv4Prefix.parse(prefix).contains(ip)
