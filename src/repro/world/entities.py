"""Organizations and the paper's sector taxonomy (Table 4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Sector(Enum):
    GOVERNMENT_MINISTRY = "Government Ministry"
    GOVERNMENT_ORGANIZATION = "Government Organization"
    GOVERNMENT_INTERNET_SERVICES = "Government Internet Services"
    INFRASTRUCTURE_PROVIDER = "Infrastructure Provider"
    LAW_ENFORCEMENT = "Law Enforcement"
    ENERGY_COMPANY = "Energy Company"
    INTELLIGENCE_SERVICES = "Intelligence Services"
    POSTAL_SERVICE = "Postal Service"
    CIVIL_AVIATION = "Civil Aviation"
    LOCAL_GOVERNMENT = "Local Government"
    INSURANCE = "Insurance"
    IT_FIRM = "IT Firm"
    COMMERCIAL = "Commercial"  # generic benign background


@dataclass
class Organization:
    """The entity behind one or more domains."""

    name: str
    sector: Sector
    country: str
    domains: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if len(self.country) != 2:
            raise ValueError(f"country must be ISO alpha-2: {self.country!r}")
        self.country = self.country.upper()
