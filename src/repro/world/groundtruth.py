"""Ground truth: what actually happened in the simulated world.

Every executed campaign writes an :class:`AttackRecord` mirroring one
row of the paper's Table 2 (hijacked) or Table 3 (targeted), including
the attacker infrastructure used and which evidence channels the
simulation left visible.  Evaluation compares the pipeline's verdicts
against this ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from enum import Enum

from repro.core.types import DetectionType
from repro.world.entities import Sector


class AttackKind(Enum):
    HIJACKED = "hijacked"
    TARGETED = "targeted"


@dataclass
class AttackRecord:
    """One victim domain's ground truth."""

    domain: str
    target_fqdn: str
    kind: AttackKind
    expected_detection: DetectionType | None
    hijack_date: date
    victim_cc: str
    sector: Sector
    attacker_ips: tuple[str, ...]
    attacker_asn: int
    attacker_cc: str
    attacker_ns: tuple[str, ...] = ()
    legit_asns: tuple[int, ...] = ()
    legit_ccs: tuple[str, ...] = ()
    ca: str | None = None
    crtsh_id: int = 0
    pdns_visible: bool = True
    ct_visible: bool = True
    revoked: bool = False
    redirect_days: int = 1
    notes: str = ""

    @property
    def subdomain(self) -> str:
        base = self.domain
        if self.target_fqdn == base:
            return ""
        return self.target_fqdn[: -(len(base) + 1)]


@dataclass
class GroundTruthLedger:
    """All attacks executed in a world."""

    records: list[AttackRecord] = field(default_factory=list)

    def add(self, record: AttackRecord) -> None:
        if any(r.domain == record.domain for r in self.records):
            raise ValueError(f"duplicate ground-truth entry for {record.domain}")
        self.records.append(record)

    def record_for(self, domain: str) -> AttackRecord | None:
        for record in self.records:
            if record.domain == domain:
                return record
        return None

    def hijacked(self) -> list[AttackRecord]:
        return [r for r in self.records if r.kind is AttackKind.HIJACKED]

    def targeted(self) -> list[AttackRecord]:
        return [r for r in self.records if r.kind is AttackKind.TARGETED]

    def domains(self) -> set[str]:
        return {r.domain for r in self.records}

    def __len__(self) -> int:
        return len(self.records)
