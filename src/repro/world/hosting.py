"""Hosting providers and deterministic IP allocation.

A provider owns one or more prefixes (each geolocated to a country) under
one ASN; registering it with the world populates the routing table,
geolocation database, and AS-to-Org mapping so scan annotation agrees
with where services were actually placed.  Allocation is a simple bump
counter per prefix, which keeps worlds reproducible without tracking an
RNG through provider setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.ipv4 import IPv4Prefix


@dataclass
class _PrefixPool:
    prefix: IPv4Prefix
    country: str
    next_offset: int = 1  # skip the network address


@dataclass
class HostingProvider:
    """One AS-worth of allocatable hosting capacity."""

    name: str
    asn: int
    org_id: str
    pools: list[_PrefixPool] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        name: str,
        asn: int,
        prefixes: list[tuple[str, str]],
        org_id: str | None = None,
    ) -> "HostingProvider":
        """``prefixes`` is a list of (CIDR, country-code) pairs."""
        if not prefixes:
            raise ValueError("provider needs at least one prefix")
        provider = cls(name=name, asn=asn, org_id=org_id or name)
        for cidr, country in prefixes:
            provider.pools.append(
                _PrefixPool(prefix=IPv4Prefix.parse(cidr), country=country.upper())
            )
        return provider

    @property
    def countries(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(pool.country for pool in self.pools))

    def allocate(self, country: str | None = None) -> str:
        """Hand out the next unused address (optionally in a country)."""
        for pool in self.pools:
            if country is not None and pool.country != country.upper():
                continue
            if pool.next_offset < pool.prefix.size - 1:
                ip = pool.prefix.address_at(pool.next_offset)
                pool.next_offset += 1
                return ip
        raise RuntimeError(f"provider {self.name} has no free addresses"
                           + (f" in {country}" if country else ""))

    def claim(self, ip: str) -> str:
        """Reserve a specific address (used to pin paper-exact attacker IPs).

        The address must fall inside one of the provider's prefixes; the
        pool cursor is advanced past it when needed so later ``allocate``
        calls cannot hand the same address out again.
        """
        from repro.net.ipv4 import ip_to_int

        value = ip_to_int(ip)
        for pool in self.pools:
            if pool.prefix.contains(value):
                offset = value - pool.prefix.network
                if offset >= pool.next_offset:
                    pool.next_offset = offset + 1
                return ip
        raise ValueError(f"{ip} is not inside any prefix of {self.name}")
