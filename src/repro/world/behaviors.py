"""Benign background behaviours.

Generates the population the pipeline must *not* flag: the stable
patterns of Figure 3, the transitions of Figure 4, noisy movers, and —
most importantly for validating the shortlist — transient-but-innocent
lookalikes that each exercise one pruning heuristic (organizationally
related ASN, same country, low visibility, stale certificate,
non-sensitive naming).  Background domains skip the DNS/pDNS machinery
entirely: sensors only matter for shortlisted domains, and an empty
passive-DNS answer is itself the realistic outcome for a random benign
domain.

Mix fractions default to the paper's measured population (Section 4.2):
96.5% stable, 2.95% transition, 0.13% transient, 0.35% noisy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import timedelta

from repro.net.timeline import DateInterval
from repro.world.hosting import HostingProvider
from repro.world.world import World

PORTS = (443,)


@dataclass(frozen=True, slots=True)
class BackgroundMix:
    """Population fractions; must sum to ~1."""

    stable: float = 0.965
    transition: float = 0.0295
    transient: float = 0.0013
    noisy: float = 0.0035

    def counts(self, n: int) -> dict[str, int]:
        counts = {
            "transition": round(n * self.transition),
            "transient": round(n * self.transient),
            "noisy": round(n * self.noisy),
        }
        counts["stable"] = n - sum(counts.values())
        return counts


@dataclass
class BackgroundProviders:
    """The provider pool background generators draw from."""

    generic: list[HostingProvider]       # single-country, distinct orgs
    sibling_a: HostingProvider           # two ASNs, one organization
    sibling_b: HostingProvider
    multi_country: HostingProvider       # one ASN, two countries
    same_country_pair: tuple[HostingProvider, HostingProvider]


def standard_background_providers(world: World, base_asn: int = 60000) -> BackgroundProviders:
    """Register a realistic provider pool for background population."""
    generic = [
        world.add_provider("bg-cloud-us", base_asn + 1, [("10.0.0.0/14", "US")]),
        world.add_provider("bg-cloud-fr", base_asn + 2, [("10.8.0.0/14", "FR")]),
        world.add_provider("bg-cloud-jp", base_asn + 3, [("10.16.0.0/14", "JP")]),
        world.add_provider("bg-cloud-br", base_asn + 4, [("10.24.0.0/14", "BR")]),
        world.add_provider("bg-cloud-in", base_asn + 5, [("10.32.0.0/14", "IN")]),
        world.add_provider("bg-cloud-gb", base_asn + 6, [("10.40.0.0/14", "GB")]),
    ]
    sibling_a = world.add_provider(
        "bg-mega-cloud", base_asn + 7, [("10.48.0.0/14", "US")], org_id="mega-cloud"
    )
    sibling_b = world.add_provider(
        "bg-mega-cloud-2", base_asn + 8, [("10.56.0.0/14", "US")], org_id="mega-cloud"
    )
    multi_country = world.add_provider(
        "bg-global-cdn",
        base_asn + 9,
        [("10.64.0.0/15", "US"), ("10.66.0.0/15", "DE")],
    )
    same_a = world.add_provider("bg-host-de-1", base_asn + 10, [("10.72.0.0/14", "DE")])
    same_b = world.add_provider("bg-host-de-2", base_asn + 11, [("10.80.0.0/14", "DE")])
    return BackgroundProviders(
        generic=generic,
        sibling_a=sibling_a,
        sibling_b=sibling_b,
        multi_country=multi_country,
        same_country_pair=(same_a, same_b),
    )


def _serve(
    world: World,
    provider: HostingProvider,
    names: tuple[str, ...],
    ca: str,
    interval: DateInterval,
    country: str | None = None,
    reliability: float = 1.0,
) -> str:
    """Allocate an IP and serve a cert chain over the interval."""
    ip = provider.allocate(country)
    for cert in world.issue_chain(ca, names, interval):
        bound = DateInterval(
            max(cert.not_before, interval.start),
            min(cert.not_after, interval.end),
        )
        world.hosts.add_service(ip, PORTS, cert, bound, reliability=reliability)
    return ip


def _single_cert_serve(
    world: World,
    provider: HostingProvider,
    names: tuple[str, ...],
    ca: str,
    interval: DateInterval,
    reliability: float = 1.0,
) -> str:
    ip = provider.allocate()
    cert = world.issue_direct(
        ca, names, interval.start, validity_days=(interval.end - interval.start).days + 30
    )
    world.hosts.add_service(ip, PORTS, cert, interval, reliability=reliability)
    return ip


def _change_point(interval: DateInterval, rng: random.Random):
    """A date where a mid-life infrastructure change happens.

    Deliberately avoids the exact midpoint: for year-aligned intervals
    that is the six-month period boundary, where a transition degenerates
    into two per-period stable maps and the pattern disappears.  Changes
    land around 1/4 or 3/4 of the interval, safely inside a period.
    """
    fraction = rng.choice((0.25, 0.75)) + rng.uniform(-0.05, 0.05)
    return interval.start + (interval.end - interval.start) * fraction


def _mid(interval: DateInterval, rng: random.Random | None = None) -> DateInterval:
    if rng is None:
        point = interval.start + (interval.end - interval.start) / 2
    else:
        point = _change_point(interval, rng)
    return DateInterval(point, interval.end)


# -- stable patterns (Figure 3) -----------------------------------------------

def stable_s1(world: World, domain: str, pool: BackgroundProviders, rng: random.Random,
              interval: DateInterval) -> None:
    provider = rng.choice(pool.generic)
    _single_cert_serve(world, provider, (f"www.{domain}", domain), "DigiCert Inc", interval)


def stable_s2(world: World, domain: str, pool: BackgroundProviders, rng: random.Random,
              interval: DateInterval) -> None:
    provider = rng.choice(pool.generic)
    _serve(world, provider, (f"www.{domain}", domain), "Let's Encrypt", interval)


def stable_s3(world: World, domain: str, pool: BackgroundProviders, rng: random.Random,
              interval: DateInterval) -> None:
    provider = pool.multi_country
    names = (f"www.{domain}", domain)
    _serve(world, provider, names, "Let's Encrypt", interval, country="US")
    _serve(world, provider, names, "Let's Encrypt", _mid(interval, rng), country="DE")


def stable_s4(world: World, domain: str, pool: BackgroundProviders, rng: random.Random,
              interval: DateInterval) -> None:
    provider = rng.choice(pool.generic)
    ip = _single_cert_serve(world, provider, (f"www.{domain}", domain), "DigiCert Inc", interval)
    extra_interval = _mid(interval, rng)
    extra = world.issue_direct(
        "DigiCert Inc",
        (f"app.{domain}", domain),
        extra_interval.start,
        validity_days=(extra_interval.end - extra_interval.start).days + 30,
    )
    world.hosts.add_service(ip, PORTS, extra, extra_interval)


# -- transition patterns (Figure 4) ----------------------------------------------

def transition_x1(world: World, domain: str, pool: BackgroundProviders, rng: random.Random,
                  interval: DateInterval) -> None:
    old, new = rng.sample(pool.generic, 2)
    names = (f"www.{domain}", domain)
    cert_interval = interval
    ip_old = old.allocate()
    ip_new = new.allocate()
    cert = world.issue_direct(
        "DigiCert Inc", names, interval.start,
        validity_days=(interval.end - interval.start).days + 30,
    )
    world.hosts.add_service(ip_old, PORTS, cert, cert_interval)
    world.hosts.add_service(ip_new, PORTS, cert, _mid(interval, rng))


def transition_x2(world: World, domain: str, pool: BackgroundProviders, rng: random.Random,
                  interval: DateInterval) -> None:
    old, new = rng.sample(pool.generic, 2)
    _single_cert_serve(world, old, (f"www.{domain}", domain), "DigiCert Inc", interval)
    expansion = _mid(interval, rng)
    _serve(world, new, (f"cdn.{domain}", domain), "Let's Encrypt", expansion)


def transition_x3(world: World, domain: str, pool: BackgroundProviders, rng: random.Random,
                  interval: DateInterval) -> None:
    old, new = rng.sample(pool.generic, 2)
    mid = _change_point(interval, rng)
    _single_cert_serve(
        world, old, (f"www.{domain}", domain), "DigiCert Inc",
        DateInterval(interval.start, mid + timedelta(days=10)),
    )
    _serve(world, new, (f"www.{domain}", domain), "Let's Encrypt",
           DateInterval(mid, interval.end))


# -- noisy ------------------------------------------------------------------------

def noisy(world: World, domain: str, pool: BackgroundProviders, rng: random.Random,
          interval: DateInterval) -> None:
    """Continually moving infrastructure with no stable deployment."""
    names = (f"www.{domain}", domain)
    hops = 5
    total_days = (interval.end - interval.start).days
    hop_days = max(total_days // hops, 14)
    start = interval.start
    for _ in range(hops):
        end = min(start + timedelta(days=hop_days - 3), interval.end)
        if end <= start:
            break
        provider = rng.choice(pool.generic)
        cert = world.issue_direct("Let's Encrypt", names, start)
        ip = provider.allocate()
        world.hosts.add_service(
            ip, PORTS, cert, DateInterval(start, min(end, cert.not_after))
        )
        start = end + timedelta(days=3)


# -- benign transients (one per pruning heuristic) ----------------------------------

def transient_org_related(world: World, domain: str, pool: BackgroundProviders,
                          rng: random.Random, interval: DateInterval) -> None:
    """Brief sibling-ASN appearance — pruned by the AS2Org check."""
    names = (f"mail.{domain}", domain)
    _single_cert_serve(world, pool.sibling_a, names, "DigiCert Inc", interval)
    mid = _change_point(interval, rng)
    burst = world.issue_direct("Let's Encrypt", names, mid)
    world.hosts.add_service(
        pool.sibling_b.allocate(), PORTS, burst, DateInterval(mid, mid + timedelta(days=14))
    )


def transient_same_country(world: World, domain: str, pool: BackgroundProviders,
                           rng: random.Random, interval: DateInterval) -> None:
    """Brief different-ASN, same-country appearance — pruned by geo."""
    a, b = pool.same_country_pair
    names = (f"mail.{domain}", domain)
    _single_cert_serve(world, a, names, "DigiCert Inc", interval)
    mid = _change_point(interval, rng)
    burst = world.issue_direct("Let's Encrypt", names, mid)
    world.hosts.add_service(
        b.allocate(), PORTS, burst, DateInterval(mid, mid + timedelta(days=14))
    )


def transient_low_visibility(world: World, domain: str, pool: BackgroundProviders,
                             rng: random.Random, interval: DateInterval) -> None:
    """Flaky host missing >20% of scans — pruned by the visibility check."""
    old, new = rng.sample(pool.generic, 2)
    names = (f"mail.{domain}", domain)
    _single_cert_serve(world, old, names, "DigiCert Inc", interval, reliability=0.6)
    mid = _change_point(interval, rng)
    burst = world.issue_direct("Let's Encrypt", names, mid)
    world.hosts.add_service(
        new.allocate(), PORTS, burst, DateInterval(mid, mid + timedelta(days=14))
    )


def transient_stale_cert(world: World, domain: str, pool: BackgroundProviders,
                         rng: random.Random, interval: DateInterval) -> None:
    """Sensitive name + different ASN/country, but the certificate is months
    old and nothing happens in pDNS/CT — shortlisted, then discarded during
    inspection (the paper's 8143 -> 1256 prune)."""
    old, new = rng.sample(pool.generic, 2)
    names = (f"mail.{domain}", domain)
    _single_cert_serve(world, old, names, "DigiCert Inc", interval)
    mid = _change_point(interval, rng)
    stale = world.issue_direct(
        "DigiCert Inc", names, interval.start - timedelta(days=120), validity_days=400
    )
    world.hosts.add_service(
        new.allocate(), PORTS, stale, DateInterval(mid, mid + timedelta(days=14))
    )


def transient_nonsensitive(world: World, domain: str, pool: BackgroundProviders,
                           rng: random.Random, interval: DateInterval) -> None:
    """New cert, different ASN/country, but no sensitive name and not truly
    anomalous — dropped by the sensitive-subdomain keep rule."""
    old, new = rng.sample(pool.generic, 2)
    _single_cert_serve(world, old, (f"www.{domain}", domain), "DigiCert Inc", interval)
    mid = _change_point(interval, rng)
    burst = world.issue_direct("Let's Encrypt", (f"www.{domain}", domain), mid)
    world.hosts.add_service(
        new.allocate(), PORTS, burst, DateInterval(mid, mid + timedelta(days=14))
    )


_STABLE = (stable_s1, stable_s2, stable_s3, stable_s4)
_STABLE_WEIGHTS = (0.40, 0.45, 0.07, 0.08)
_TRANSITIONS = (transition_x1, transition_x2, transition_x3)
_TRANSITION_WEIGHTS = (0.35, 0.25, 0.40)
_TRANSIENTS = (
    transient_org_related,
    transient_same_country,
    transient_low_visibility,
    transient_stale_cert,
    transient_nonsensitive,
)


def populate_background(
    world: World,
    n_domains: int,
    interval: DateInterval,
    pool: BackgroundProviders | None = None,
    mix: BackgroundMix | None = None,
    tld: str = "com",
    name_prefix: str = "bg",
) -> dict[str, str]:
    """Generate ``n_domains`` benign domains; returns domain -> behaviour."""
    if interval.end is None:
        raise ValueError("background population needs a bounded interval")
    pool = pool or standard_background_providers(world)
    mix = mix or BackgroundMix()
    rng = random.Random(world.seed ^ 0xBACC)
    counts = mix.counts(n_domains)

    assigned: dict[str, str] = {}
    index = 0

    def next_domain() -> str:
        nonlocal index
        index += 1
        return f"{name_prefix}{index:06d}.{tld}"

    for _ in range(counts["stable"]):
        behaviour = rng.choices(_STABLE, weights=_STABLE_WEIGHTS)[0]
        domain = next_domain()
        behaviour(world, domain, pool, rng, interval)
        assigned[domain] = behaviour.__name__
    for _ in range(counts["transition"]):
        behaviour = rng.choices(_TRANSITIONS, weights=_TRANSITION_WEIGHTS)[0]
        domain = next_domain()
        behaviour(world, domain, pool, rng, interval)
        assigned[domain] = behaviour.__name__
    for i in range(counts["transient"]):
        behaviour = _TRANSIENTS[i % len(_TRANSIENTS)]
        domain = next_domain()
        behaviour(world, domain, pool, rng, interval)
        assigned[domain] = behaviour.__name__
    for _ in range(counts["noisy"]):
        domain = next_domain()
        noisy(world, domain, pool, rng, interval)
        assigned[domain] = "noisy"
    return assigned
