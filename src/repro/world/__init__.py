"""The synthetic Internet and its attackers.

This package generates every data set the detection pipeline consumes
from one causally-consistent simulation: organizations register domains
through registrars, host services with certificates issued by real CA
objects, and a population of benign behaviours (stable S1-S4, transition
X1-X3, noisy, and transient-but-innocent lookalikes) forms the
background.  Attackers execute the paper's playbook against chosen
victims — compromise the registrar path, stage infrastructure, pass ACME
domain validation during a hijack window, redirect briefly — and a
ground-truth ledger records what "really happened" so the pipeline's
verdicts can be scored.
"""

from repro.world.attacker import (
    AttackerProfile,
    CampaignMode,
    CampaignSpec,
    Capability,
    run_campaign,
)
from repro.world.behaviors import BackgroundMix, populate_background
from repro.world.entities import Organization, Sector
from repro.world.groundtruth import AttackKind, AttackRecord, GroundTruthLedger
from repro.world.hosting import HostingProvider
from repro.world.impact import ImpactModel, ImpactReport
from repro.world.randomized import RandomWorldConfig, random_world
from repro.world.sim import StudyDatasets
from repro.world.world import DomainDeployment, World

__all__ = [
    "AttackerProfile",
    "CampaignMode",
    "CampaignSpec",
    "Capability",
    "run_campaign",
    "ImpactModel",
    "ImpactReport",
    "RandomWorldConfig",
    "random_world",
    "BackgroundMix",
    "populate_background",
    "Organization",
    "Sector",
    "AttackKind",
    "AttackRecord",
    "GroundTruthLedger",
    "HostingProvider",
    "StudyDatasets",
    "DomainDeployment",
    "World",
]
