"""Synthetic large-population worlds, streamed straight into columns.

The behavioral simulator (:mod:`repro.world.world`) builds worlds as
object graphs — hosts, CAs, resolvers — which is the right tool for the
paper's scenarios but tops out around thousands of domains.  Scale
benchmarking needs populations of 10\\ :sup:`5`–10\\ :sup:`6` registered
domains, where even one short-lived record object per row would dominate
the generator's memory.  This module therefore streams rows directly
into a :class:`~repro.scan.table._TableBuilder` — interned ids and typed
arrays from the first row, never an ``AnnotatedScanRecord`` — and hands
the result over as an ordinary :class:`PipelineInputs` bundle (or writes
it straight to a segment directory).

Population shape, chosen to stress exactly the paths the segment data
plane optimizes:

* ``n_active`` domains (default 200) scan every week of the single
  analysis period (2019 H1) with stable deployments — these flow
  through the full funnel;
* the remaining ``n_domains - n_active`` background domains appear in
  two scans in November 2019, *outside* the analysis period — their
  deployment maps encode to empty and are dropped by the deployment
  stage, so they exercise the million-entry domain pool, the CSR
  index, and the shard scheduler without inflating the funnel tail.

Background rows draw from small shared pools (certificates, IPs, name
sets), so the only per-background-domain payload is the domain string
itself and its one-element base tuple — the pools a segment keeps
on-disk behind lazy views.  Everything is deterministic in ``(seed,
n_domains, n_active)``: same arguments, byte-identical segments.
"""

from __future__ import annotations

from datetime import date, timedelta
from pathlib import Path

from repro.ct.log import CTLog
from repro.ipintel.as2org import AS2Org
from repro.net.timeline import scan_dates_every, study_periods
from repro.pdns.database import PassiveDNSDatabase
from repro.scan.dataset import ScanDataset
from repro.scan.table import ScanTable
from repro.tls.certificate import Certificate
from repro.dns.records import RRType

#: The single analysis period every scale world uses.
SCALE_START = date(2019, 1, 1)
SCALE_END = date(2019, 6, 30)

#: Shared background pools: small by construction so the per-domain
#: payload of a million-domain world is the domain string alone.
_N_SHARED_CERTS = 64
_N_SHARED_IPS = 1024

_BACKGROUND_DATES = (date(2019, 11, 6), date(2019, 11, 13))


def _active_domain(i: int) -> str:
    return f"active-{i:05d}.example.com"


def _background_domain(i: int) -> str:
    return f"bg-{i:07d}.example.net"


def _shared_certs(seed: int) -> list[Certificate]:
    certs = []
    for k in range(_N_SHARED_CERTS):
        name = f"shared-{seed}-{k:03d}.example.org"
        certs.append(
            Certificate(
                serial=10_000 + k,
                common_name=name,
                sans=(name,),
                issuer="Scale Test CA",
                not_before=date(2018, 1, 1),
                not_after=date(2020, 1, 1),
            )
        )
    return certs


def scale_world(
    n_domains: int, *, n_active: int = 200, seed: int = 0
):
    """A deterministic ``n_domains``-population input bundle.

    Returns a :class:`repro.core.pipeline.PipelineInputs` whose scan
    table was built column-first (no row objects).  ``n_active`` is
    clamped to ``n_domains``.
    """
    from repro.core.pipeline import PipelineInputs

    if n_domains < 1:
        raise ValueError("n_domains must be >= 1")
    n_active = min(n_active, n_domains)
    n_background = n_domains - n_active

    scan_dates = scan_dates_every(SCALE_START, date(2019, 12, 31), 7)
    periods = study_periods(SCALE_START, SCALE_END)
    active_dates = [d for d in scan_dates if d <= SCALE_END]

    certs = _shared_certs(seed)
    shared_ips = [
        f"198.{18 + (k >> 8) % 2}.{(k >> 8) % 256}.{k % 256}"
        for k in range(_N_SHARED_IPS)
    ]

    builder = ScanTable.build()

    # Active domains: one row per weekly scan of the analysis period,
    # stable deployment (same ip/asn/cert every week).
    for i in range(n_active):
        domain = _active_domain(i)
        ip = f"203.0.{(i >> 8) % 256}.{i % 256}"
        asn = 64500 + (i + seed) % 8
        cert = certs[(i + seed) % _N_SHARED_CERTS]
        names = (domain, f"www.{domain}")
        bases = (domain,)
        for day in active_dates:
            builder.append_row(
                day.toordinal(), ip, asn, cert, "US",
                (443,), names, bases, True, i % 10 == 0,
            )

    # Background domains: two rows each, outside the analysis period,
    # drawing every value except the domain itself from shared pools.
    for i in range(n_background):
        domain = _background_domain(i)
        ip = shared_ips[(i + seed) % _N_SHARED_IPS]
        asn = 64600 + i % 16
        cert = certs[i % _N_SHARED_CERTS]
        bases = (domain,)
        for day in _BACKGROUND_DATES:
            builder.append_row(
                day.toordinal(), ip, asn, cert, "DE",
                (443,), (), bases, True, False,
            )

    table = builder.finish()
    scan = ScanDataset.from_table(table, tuple(scan_dates))

    pdns = PassiveDNSDatabase()
    for i in range(n_active):
        domain = _active_domain(i)
        ip = f"203.0.{(i >> 8) % 256}.{i % 256}"
        for day in (SCALE_START, SCALE_END):
            pdns.add_observation(domain, RRType.A, ip, day)
            pdns.add_observation(
                domain, RRType.NS, f"ns{1 + i % 2}.scale-dns.example.org", day
            )

    log = CTLog(name="scale-ct-log")
    for k, cert in enumerate(certs):
        log.submit(cert, date(2018, 1, 2) + timedelta(days=k))
    from repro.ct.crtsh import CrtShService

    crtsh = CrtShService([log], asof=SCALE_END + timedelta(days=365))

    as2org = AS2Org()
    for offset in range(8):
        as2org.assign(64500 + offset, f"org-active-{offset}", f"Active Org {offset}")
    for offset in range(16):
        as2org.assign(64600 + offset, f"org-bg-{offset}", f"Background Org {offset}")

    return PipelineInputs(
        scan=scan,
        pdns=pdns,
        crtsh=crtsh,
        as2org=as2org,
        periods=periods,
    )


def make_delta(inputs, *, seed: int = 0, fraction: float = 0.01, epoch: int = 1):
    """A deterministic epoch delta over a scale world.

    Picks ``max(1, n_active * fraction)`` active domains (evenly strided,
    rotated by ``(seed, epoch)``) and gives each one an epoch of churn:

    * a **deployment transition** — a new scan row on the last in-period
      scan date with a fresh IP, rotated ASN, and a delta-specific
      certificate (so the domain's deployment map genuinely changes);
    * a **new out-of-period scan date** (one week per epoch past the
      base calendar) with the same new deployment, so the overlay's
      calendar-extension path is exercised without shifting any study
      period's scan indices;
    * **pDNS churn** — an A observation to the new IP and an NS flip;
    * a **CT entry** for the delta certificate (crt.sh id pre-stamped,
      so split-log and merged-log layouts answer identically).

    Deterministic in ``(world, seed, fraction, epoch)``: same arguments,
    byte-identical delta files.
    """
    from repro.epochs.delta import EpochDelta

    table = inputs.scan.table

    def is_active(i: int) -> bool:
        return table.domain_index(_active_domain(i)) is not None

    if not is_active(0):
        raise ValueError("not a scale world: no active-* domains found")
    # Count the actives by probing the sorted domain pool (exponential
    # then binary search) — never decoding the full million-name pool.
    hi = 1
    while is_active(hi):
        hi *= 2
    lo = hi // 2
    while lo < hi:
        mid = (lo + hi) // 2
        if is_active(mid):
            lo = mid + 1
        else:
            hi = mid
    n_active = lo

    n_pick = max(1, min(n_active, int(n_active * fraction)))
    offset = (seed * 7 + epoch * 3) % n_active
    picked = sorted({(offset + (k * n_active) // n_pick) % n_active for k in range(n_pick)})

    last_active = max(d for d in inputs.scan.scan_dates if d <= SCALE_END)
    new_day = date(2020, 1, 7) + timedelta(days=7 * (epoch - 1))

    rows = []
    pdns_observations = []
    ct_entries = []
    for k, i in enumerate(picked):
        domain = _active_domain(i)
        new_ip = f"203.{1 + epoch % 8}.{(i >> 8) % 256}.{i % 256}"
        asn = 64500 + (i + seed + epoch) % 8
        cn = f"delta-{seed}-{epoch}-{k:03d}.example.org"
        cert = Certificate(
            serial=20_000 + epoch * 100 + k,
            common_name=cn,
            sans=(cn, domain),
            issuer="Delta CA",
            not_before=date(2019, 1, 1),
            not_after=date(2020, 12, 31),
            crtsh_id=200_000_000 + epoch * 10_000 + k,
        )
        names = (domain, f"www.{domain}")
        for day in (last_active, new_day):
            rows.append(
                (
                    day.toordinal(), new_ip, asn, cert, "US",
                    (443,), names, (domain,), True, i % 10 == 0,
                )
            )
        pdns_observations.append((domain, RRType.A, new_ip, last_active))
        pdns_observations.append(
            (
                domain,
                RRType.NS,
                f"ns{1 + (i + epoch) % 2}.scale-dns.example.org",
                new_day,
            )
        )
        ct_entries.append((cert, date(2019, 12, 1) + timedelta(days=k % 20)))

    return EpochDelta(
        epoch=epoch,
        label=f"scale-delta-seed{seed}-epoch{epoch}",
        scan_rows=tuple(rows),
        scan_dates=(new_day,),
        pdns_observations=tuple(pdns_observations),
        ct_entries=tuple(ct_entries),
    )


def write_scale_segments(
    n_domains: int,
    directory: str | Path,
    *,
    n_active: int = 200,
    seed: int = 0,
) -> dict[str, Path]:
    """Generate a scale world and lay it out as a segment directory."""
    from repro.segments.inputs import write_segments

    inputs = scale_world(n_domains, n_active=n_active, seed=seed)
    return write_segments(inputs, directory)


__all__ = [
    "SCALE_END",
    "SCALE_START",
    "make_delta",
    "scale_world",
    "write_scale_segments",
]
