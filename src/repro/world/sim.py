"""Running a world into its study datasets.

``StudyDatasets`` bundles everything a third-party analyst would have:
the annotated weekly scan dataset, the passive-DNS database, the crt.sh
search service, the IP-intelligence tables, and — for evaluation only —
the ground-truth ledger.  ``run_study`` executes the scan engine over
the full calendar and drives the pDNS sensor network through the
observation plan (honoring per-domain blackouts).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import date

from repro.core.pipeline import HijackPipeline, PipelineConfig, PipelineReport
from repro.exec.backends import ExecutionBackend
from repro.exec.metrics import RunMetrics
from repro.ct.crtsh import CrtShService
from repro.ct.log import CTLog
from repro.ipintel.as2org import AS2Org
from repro.ipintel.geo import GeoDB
from repro.ipintel.pfx2as import RoutingTable
from repro.net.timeline import Period
from repro.pdns.database import PassiveDNSDatabase
from repro.pdns.sensor import SensorNetwork
from repro.scan.annotate import Annotator
from repro.scan.dataset import ScanDataset
from repro.scan.engine import ScanEngine
from repro.tls.revocation import RevocationRegistry
from repro.tls.truststore import TrustStore
from repro.world.groundtruth import GroundTruthLedger
from repro.world.world import World


@dataclass
class StudyDatasets:
    """The analyst's view of one simulated study."""

    scan: ScanDataset
    pdns: PassiveDNSDatabase
    crtsh: CrtShService
    ct_log: CTLog
    routing: RoutingTable
    geo: GeoDB
    as2org: AS2Org
    trust: TrustStore
    revocations: RevocationRegistry
    scan_dates: tuple[date, ...]
    periods: tuple[Period, ...]
    ground_truth: GroundTruthLedger
    world: World

    def pipeline(
        self, config: PipelineConfig | None = None, faults=None
    ) -> HijackPipeline:
        """Build the detection pipeline over these datasets.

        ``faults`` takes a :class:`repro.faults.FaultPlan` (or a spec /
        spec string, bound to seed 0) to degrade the run.
        """
        return HijackPipeline.from_study(self, config=config, faults=faults)

    def run_pipeline(
        self,
        config: PipelineConfig | None = None,
        backend: ExecutionBackend | None = None,
        faults=None,
        cache=None,
    ) -> PipelineReport:
        return self.pipeline(config, faults=faults).run(backend, cache=cache)

    def profile_pipeline(
        self,
        config: PipelineConfig | None = None,
        backend: ExecutionBackend | None = None,
        faults=None,
        tracer=None,
        cache=None,
        events=None,
        memory: bool = False,
        ledger=None,
    ) -> tuple[PipelineReport, RunMetrics]:
        """Run the pipeline and return its report plus the run manifest.

        ``tracer`` takes an enabled :class:`repro.obs.Tracer` to collect
        the run's hierarchical span tree alongside the manifest; ``cache``
        takes a :class:`repro.cache.StageCache` to satisfy repeat runs
        from disk; ``events`` a live :class:`repro.obs.EventSink`;
        ``ledger`` a :class:`repro.obs.RunLedger` to record the run in;
        ``memory=True`` traces per-stage allocations.
        """
        return self.pipeline(config, faults=faults).profile(
            backend, tracer=tracer, cache=cache,
            events=events, memory=memory, ledger=ledger,
        )


def run_study(
    world: World,
    pdns_coverage: float = 0.9,
    pdns_queries_per_day: int = 4,
    port_loss: float = 0.02,
    degraded_sensors: bool = False,
) -> StudyDatasets:
    """Materialize every dataset from the world's current state.

    ``degraded_sensors=True`` applies the coverage probability even to
    densely-observed names, modelling a pDNS vendor with weak vantage
    into the victims' networks (the paper's §4.6 coverage limitation).
    """
    engine = ScanEngine(world.hosts, seed=world.seed, port_loss=port_loss)
    raw = engine.run(world.scan_dates)
    annotator = Annotator(world.routing, world.geo, world.trust)
    # Columnar fast path: annotation appends straight into the scan
    # table's typed arrays; record objects stay lazy until asked for.
    scan = annotator.annotate_dataset(raw, world.scan_dates)

    pdns = PassiveDNSDatabase()
    sensor = SensorNetwork(
        world.resolver,
        random.Random(world.seed ^ 0x5E25),
        coverage=pdns_coverage,
        queries_per_day=pdns_queries_per_day,
        dense_ignores_coverage=not degraded_sensors,
    )
    for fqdn in world.plan.fqdns():
        for day in world.plan.days_for(fqdn):
            if world.is_blacked_out(fqdn, day):
                continue
            sensor.observe_day(pdns, fqdn, day, dense=world.plan.is_dense(fqdn, day))

    return StudyDatasets(
        scan=scan,
        pdns=pdns,
        crtsh=world.crtsh,
        ct_log=world.ct_log,
        routing=world.routing,
        geo=world.geo,
        as2org=world.as2org,
        trust=world.trust,
        revocations=world.revocations,
        scan_dates=world.scan_dates,
        periods=world.periods,
        ground_truth=world.ground_truth,
        world=world,
    )
