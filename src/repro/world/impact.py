"""Credential-impact assessment: what the attacker actually gained.

The attacks exist to harvest login credentials (Section 3): while a
redirection window is open, every user who authenticates against the
targeted service hands the attacker a valid credential — invisibly,
because the counterfeit server presents a browser-trusted certificate
and tunnels traffic back to the real one (the ICAP trick).

This module replays a deterministic user population against the world's
resolver over each campaign's attack span and records which logins
landed on attacker infrastructure.  It quantifies the paper's
asymmetric-threat point: a few hours of DNS control compromise a
meaningful share of an organization's accounts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, time, timedelta

from repro.world.groundtruth import AttackKind, AttackRecord, GroundTruthLedger
from repro.world.world import World


@dataclass(frozen=True, slots=True)
class CredentialTheft:
    """One captured login."""

    domain: str
    fqdn: str
    user: str
    instant: datetime
    attacker_ip: str


@dataclass
class DomainImpact:
    domain: str
    users: int
    logins: int = 0
    captured: list[CredentialTheft] = field(default_factory=list)

    @property
    def compromised_users(self) -> int:
        return len({theft.user for theft in self.captured})

    @property
    def compromise_rate(self) -> float:
        return self.compromised_users / self.users if self.users else 0.0


@dataclass
class ImpactReport:
    domains: dict[str, DomainImpact] = field(default_factory=dict)

    @property
    def total_captured(self) -> int:
        return sum(len(d.captured) for d in self.domains.values())

    @property
    def domains_with_theft(self) -> list[str]:
        return sorted(d.domain for d in self.domains.values() if d.captured)


class ImpactModel:
    """Replays user logins against the time-aware resolver."""

    def __init__(
        self,
        world: World,
        users_per_domain: int = 40,
        logins_per_user_per_day: int = 2,
        seed: int = 97,
    ) -> None:
        if users_per_domain < 1 or logins_per_user_per_day < 1:
            raise ValueError("population parameters must be positive")
        self._world = world
        self._users = users_per_domain
        self._logins = logins_per_user_per_day
        self._seed = seed

    def _login_instants(self, record: AttackRecord, user_index: int):
        """Deterministic login times for one user over the attack span.

        Working-hours biased: logins cluster between 06:00 and 22:00.
        """
        rng = random.Random(f"{self._seed}|{record.domain}|{user_index}")
        start = record.hijack_date - timedelta(days=1)
        end = record.hijack_date + timedelta(days=max(record.redirect_days, 1) + 1)
        day = start
        while day <= end:
            for _ in range(self._logins):
                seconds = rng.randrange(6 * 3600, 22 * 3600)
                yield datetime.combine(day, time(0, 0)) + timedelta(seconds=seconds)
            day += timedelta(days=1)

    def assess_domain(self, record: AttackRecord) -> DomainImpact:
        """Measure one campaign's credential harvest."""
        impact = DomainImpact(domain=record.domain, users=self._users)
        attacker_ips = set(record.attacker_ips)
        resolver = self._world.resolver
        for user_index in range(self._users):
            user = f"user{user_index:03d}@{record.domain}"
            for instant in self._login_instants(record, user_index):
                impact.logins += 1
                answers = resolver.resolve_a(record.target_fqdn, instant)
                stolen = set(answers) & attacker_ips
                if stolen:
                    impact.captured.append(
                        CredentialTheft(
                            domain=record.domain,
                            fqdn=record.target_fqdn,
                            user=user,
                            instant=instant,
                            attacker_ip=sorted(stolen)[0],
                        )
                    )
        return impact

    def assess(self, ledger: GroundTruthLedger) -> ImpactReport:
        """Measure every hijacked campaign in the ledger."""
        report = ImpactReport()
        for record in ledger.records:
            if record.kind is not AttackKind.HIJACKED:
                continue
            report.domains[record.domain] = self.assess_domain(record)
        return report


def format_impact(report: ImpactReport, top: int = 15) -> str:
    header = (
        f"{'Domain':<26} {'users':>6} {'logins':>7} {'stolen':>7} "
        f"{'users hit':>10} {'rate':>6}"
    )
    lines = [header, "-" * len(header)]
    ranked = sorted(
        report.domains.values(), key=lambda d: -len(d.captured)
    )[:top]
    for impact in ranked:
        lines.append(
            f"{impact.domain:<26} {impact.users:>6} {impact.logins:>7} "
            f"{len(impact.captured):>7} {impact.compromised_users:>10} "
            f"{impact.compromise_rate:>6.0%}"
        )
    lines.append(
        f"total credentials captured across campaigns: {report.total_captured}"
    )
    return "\n".join(lines)
