"""Randomized campaign worlds for robustness evaluation.

The paper scenario fixes every victim, date, and IP to Tables 2/3; a
pipeline could in principle be (accidentally) tuned to that one layout.
This generator draws victims, hosting, attacker clouds, campaign modes,
and dates from seeded distributions, so evaluation can ask the stronger
question: does the methodology recover *arbitrary* attacks executed by
the same playbook, at full recall and zero false positives, across many
independent worlds?
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import date

from repro.core.types import DetectionType
from repro.net.timeline import DateInterval
from repro.world.attacker import AttackerProfile, CampaignMode, CampaignSpec, run_campaign
from repro.world.behaviors import populate_background
from repro.world.entities import Organization, Sector
from repro.world.world import World

_VICTIM_TLDS = ("gov.kg", "gov.ae", "gov.cy", "gr", "se", "com", "net", "org")
_VICTIM_CCS = ("KG", "AE", "CY", "GR", "SE", "US", "DE", "JP")
_SENSITIVE_SUBS = ("mail", "webmail", "vpn", "owa", "portal", "remote")
_ATTACKER_CCS = ("NL", "RU", "DE", "SG", "RO", "HK")
_SECTORS = (
    Sector.GOVERNMENT_MINISTRY,
    Sector.GOVERNMENT_ORGANIZATION,
    Sector.INFRASTRUCTURE_PROVIDER,
    Sector.ENERGY_COMPANY,
    Sector.LAW_ENFORCEMENT,
)

#: Campaign-mode mix (mode, weight, expected detection).
_MODES = (
    (CampaignMode.T1, 0.55, DetectionType.T1),
    (CampaignMode.T2, 0.15, DetectionType.T2),
    (CampaignMode.PIVOT, 0.15, DetectionType.P_NS),
    (CampaignMode.PRELUDE_ONLY, 0.15, DetectionType.T2_TARGETED),
)


@dataclass(frozen=True, slots=True)
class RandomWorldConfig:
    n_victims: int = 8
    n_background: int = 40
    start: date = date(2018, 1, 1)
    end: date = date(2019, 12, 31)
    n_attacker_clouds: int = 3
    n_ns_clusters: int = 2


def _hijack_date(rng: random.Random, config: RandomWorldConfig) -> date:
    """A date in an interior six-month period, clear of period edges.

    Interior periods guarantee the truly-anomalous rule has a full
    stable period on both sides; excluding each period's final month
    keeps the transient away from the boundary at weekly scan cadence.
    """
    from repro.net.timeline import study_periods

    periods = study_periods(config.start, config.end)
    if len(periods) < 3:
        raise ValueError("randomized worlds need at least three periods")
    period = rng.choice(periods[1:-1])
    month = rng.randrange(period.start.month, period.end.month)  # excludes last
    return date(period.start.year, month, 10)


def random_world(seed: int = 0, config: RandomWorldConfig | None = None) -> World:
    """Build a world with randomized victims and campaigns."""
    config = config or RandomWorldConfig()
    world = World(seed=seed, start=config.start, end=config.end)
    rng = random.Random(seed ^ 0xA77AC)

    clouds = [
        world.add_provider(
            f"cloud-{i}",
            64800 + i,
            [(f"198.{18 + i}.{j}.0/24", rng.choice(_ATTACKER_CCS)) for j in range(4)],
        )
        for i in range(config.n_attacker_clouds)
    ]
    clusters = [
        AttackerProfile(name=f"actor-{i}", ns_domain=f"rogue-{i}.net")
        for i in range(config.n_ns_clusters)
    ]
    for profile in clusters:
        profile.ensure_staged(world, config.start)

    modes = [m for m, _, _ in _MODES]
    weights = [w for _, w, _ in _MODES]
    expected_of = {m: d for m, _, d in _MODES}

    # PIVOT victims need a confirmed cluster-mate, so force the first
    # victim of every cluster to be a directly-detectable T1.
    drawn_modes: list[CampaignMode] = [
        rng.choices(modes, weights=weights)[0] for _ in range(config.n_victims)
    ]
    for i in range(min(config.n_ns_clusters, config.n_victims)):
        drawn_modes[i] = CampaignMode.T1

    for index, mode in enumerate(drawn_modes):
        cc = rng.choice(_VICTIM_CCS)
        tld = rng.choice(_VICTIM_TLDS)
        domain = f"victim{index:03d}.{tld}"
        provider = world.add_provider(
            f"victim-isp-{index}", 65100 + index, [(f"10.{150 + index}.0.0/16", cc)]
        )
        sub = rng.choice(_SENSITIVE_SUBS)
        victim = world.setup_domain(
            domain,
            provider,
            organization=Organization(domain, rng.choice(_SECTORS), cc),
            services=("www", sub),
            scannable=mode is not CampaignMode.PIVOT,
        )
        cluster = clusters[index % len(clusters)]
        # The shortlist (correctly) prunes transients in the victim's own
        # country; pick attacker geography elsewhere so the per-campaign
        # expected channel stays deterministic.
        usable = [c for c in clouds if any(cc_ != cc for cc_ in c.countries)]
        cloud = rng.choice(usable or clouds)
        foreign = [c for c in cloud.countries if c != cc]
        spec = CampaignSpec(
            victim=victim,
            sector=victim.organization.sector,
            victim_cc=cc,
            mode=mode,
            expected_detection=expected_of[mode],
            hijack_date=_hijack_date(rng, config),
            attacker=cluster,
            attacker_provider=cloud,
            attacker_country=rng.choice(foreign) if foreign else None,
            target_subdomain=sub,
            ca_name=None if mode is CampaignMode.PRELUDE_ONLY
            else rng.choice(("Let's Encrypt", "Comodo")),
            serve_days=rng.choice((6, 6, 13)),
            redirect_span_days=rng.choice((1, 1, 2, 4)),
        )
        run_campaign(world, spec)

    if config.n_background:
        populate_background(
            world, config.n_background, DateInterval(world.start, world.end)
        )
    return world
