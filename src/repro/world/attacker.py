"""The attacker playbook (Section 3 of the paper), executed for real.

A campaign walks the stages the paper describes: develop capability
(compromise the victim's registrar account), stage infrastructure (a
rogue nameserver host plus a serving host in a bulletproof-ish cloud),
obtain a browser-trusted certificate by hijacking the delegation for a
couple of hours so the CA's DNS-01 check lands on attacker
infrastructure, deploy the certificate on the serving host where weekly
scans can spot it, and finally run short redirection windows that divert
the sensitive subdomain to the counterfeit server.

Campaign *modes* select which observable side effects exist, matching
the detection types of Tables 2 and 3 — e.g. a T2 prelude serves the
victim's own certificate (proxying to the legitimate host), and pivot
victims have no scan-visible stable infrastructure at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, datetime, time, timedelta
from enum import Enum

from repro.core.types import DetectionType
from repro.dns.nameserver import NameserverHost
from repro.dns.registrar import RegistrarError
from repro.dns.records import RRType
from repro.net.timeline import DateInterval
from repro.tls.certificate import Certificate
from repro.world.entities import Sector
from repro.world.groundtruth import AttackKind, AttackRecord
from repro.world.hosting import HostingProvider
from repro.world.world import DomainDeployment, World


class CampaignBlocked(Exception):
    """The attack could not proceed — a mitigation held.

    Raised when the capability path the attacker developed cannot move
    the delegation (e.g. Registry Lock blocking the registrar channel).
    """


class CampaignMode(Enum):
    """How the attack manifests in the observable data."""

    T1 = "t1"                    # new cert served from transient deployment
    T1_NO_PDNS = "t1-no-pdns"    # same, but sensors never saw the domain (T1*)
    T2 = "t2"                    # proxy prelude + hijack (stable cert in scans)
    PIVOT = "pivot"              # no scan-visible victim infra; found via pivot
    PRELUDE_ONLY = "prelude"     # staged proxy, attack never launched (targeted)
    PRELUDE_REDIRECT = "prelude-redirect"  # redirection but no cert (targeted)


class Capability(Enum):
    """How the attacker develops the ability to change DNS (Section 3).

    Path (a) compromises the registrant's account with their registrar;
    path (b) compromises the registrar's own systems (every domain it
    sponsors becomes reachable); path (c) compromises the registry's
    configuration database directly.  All three end at the same place —
    the delegation moves — so detection is identical; what differs is
    whose logs would show the intrusion.
    """

    ACCOUNT = "account"
    REGISTRAR = "registrar"
    REGISTRY = "registry"


@dataclass
class AttackerProfile:
    """One actor: shared nameserver infrastructure and hosting pool."""

    name: str
    ns_domain: str | None = None           # e.g. "kg-infocom.ru"
    ns_host: NameserverHost | None = None
    active_from: date | None = None

    def nameservers(self) -> tuple[str, ...]:
        if self.ns_domain is None:
            return ()
        return (f"ns1.{self.ns_domain}", f"ns2.{self.ns_domain}")

    def ensure_staged(self, world: World, by: date) -> None:
        """Bind the rogue nameserver names to a host the actor controls."""
        if self.ns_domain is None or self.ns_host is not None:
            return
        self.ns_host = NameserverHost(operator=self.name)
        start = datetime.combine(by - timedelta(days=30), time(0, 0))
        for ns_name in self.nameservers():
            world.directory.bind(ns_name, self.ns_host, start=start)
        self.active_from = by


@dataclass
class CampaignSpec:
    """Everything needed to execute one victim's campaign."""

    victim: DomainDeployment
    sector: Sector
    victim_cc: str
    mode: CampaignMode
    expected_detection: DetectionType | None
    hijack_date: date
    attacker: AttackerProfile
    attacker_provider: HostingProvider
    attacker_ip: str | None = None      # pin the paper's exact IP
    attacker_country: str | None = None  # allocate from a specific geography
    target_subdomain: str = "mail"      # "" = the registered domain itself
    ca_name: str | None = "Let's Encrypt"
    serve_days: int = 6                 # how long the counterfeit host serves
    redirect_windows: int = 2
    redirect_hours: int = 6
    redirect_span_days: int = 1         # windows spread over this many days
    pdns_visible: bool = True
    revoked_after_days: int | None = None
    use_own_ns_names: bool = False      # A-record-only hijack via victim account
    capability: Capability = Capability.ACCOUNT
    notes: str = ""

    @property
    def target_fqdn(self) -> str:
        if not self.target_subdomain:
            return self.victim.domain
        return f"{self.target_subdomain}.{self.victim.domain}"


def _window_starts(spec: CampaignSpec) -> list[datetime]:
    """Deterministic start instants for the redirection windows.

    Windows begin at 05:00 so they never overlap the 02:00 certificate-
    issuance window; a one-day campaign keeps all its windows inside the
    hijack date itself (the paper: most hijacks redirect for less than a
    day at a time).
    """
    starts: list[datetime] = []
    span = max(spec.redirect_span_days, 1)
    for i in range(spec.redirect_windows):
        day_offset = (i * span) // max(spec.redirect_windows, 1)
        starts.append(
            datetime.combine(spec.hijack_date + timedelta(days=day_offset), time(5, 0))
            + timedelta(hours=3 * i)
        )
    return starts


def run_campaign(world: World, spec: CampaignSpec) -> AttackRecord:
    """Execute the campaign and record the ground truth."""
    victim = spec.victim
    attacker = spec.attacker
    attacker.ensure_staged(world, spec.hijack_date)
    provider = spec.attacker_provider
    attacker_ip = (
        provider.claim(spec.attacker_ip)
        if spec.attacker_ip
        else provider.allocate(spec.attacker_country)
    )
    attacker_cc = world.geo.lookup(attacker_ip) or "ZZ"

    # Stage: a host the rogue NS can point the target at, and that the
    # rogue NS itself serves challenge/answer records from.
    rogue_ns = attacker.ns_host
    rogue_ns_names = attacker.nameservers()
    if spec.use_own_ns_names or rogue_ns is None:
        # A-record-only hijack: manipulate records on a host bound to the
        # victim's own NS names via the compromised account/provider.
        rogue_ns = victim.ns_host
        rogue_ns_names = ()

    # Develop capability (Section 3): account theft, registrar compromise,
    # or registry compromise — all yield delegation-write ability.
    registry = world.registry_for(victim.domain)
    if spec.capability is Capability.ACCOUNT:
        credential = victim.registrar.compromise_account(victim.credential.username)

        def set_delegation(ns: tuple[str, ...], start: datetime, end: datetime) -> None:
            try:
                victim.registrar.update_delegation(
                    credential, victim.domain, ns, start, end
                )
            except (PermissionError, RegistrarError) as exc:
                raise CampaignBlocked(str(exc)) from exc

        def remove_ds(start: datetime, end: datetime) -> None:
            victim.registrar.remove_ds(credential, victim.domain, start, end)

    elif spec.capability is Capability.REGISTRAR:
        victim.registrar.compromise_registrar()

        def set_delegation(ns: tuple[str, ...], start: datetime, end: datetime) -> None:
            try:
                victim.registrar.privileged_update(victim.domain, ns, start, end)
            except (PermissionError, RegistrarError) as exc:
                raise CampaignBlocked(str(exc)) from exc

        def remove_ds(start: datetime, end: datetime) -> None:
            registry.remove_ds(victim.domain, start, end)

    else:  # Capability.REGISTRY: straight into the registry database —
        # the one channel Registry Lock cannot gate.

        def set_delegation(ns: tuple[str, ...], start: datetime, end: datetime) -> None:
            registry.set_delegation(victim.domain, ns, start, end, force=True)

        def remove_ds(start: datetime, end: datetime) -> None:
            registry.remove_ds(victim.domain, start, end)

    # If the victim deploys DNSSEC, the same capability strips the DS
    # records for the duration of each manipulation (Section 2.2: "the
    # attacker can also typically disable protections provided by DNSSEC").
    victim_has_dnssec = bool(
        registry.ds_at(victim.domain, datetime.combine(spec.hijack_date, time(0, 0)))
    )

    def strip_ds(start: datetime, end: datetime) -> None:
        if victim_has_dnssec:
            remove_ds(start, end)

    malicious_cert: Certificate | None = None
    issue_day: date | None = None
    wants_cert = spec.ca_name is not None and spec.mode in (
        CampaignMode.T1,
        CampaignMode.T1_NO_PDNS,
        CampaignMode.T2,
        CampaignMode.PIVOT,
    )
    if wants_cert:
        # Certificates are obtained in the small hours of the hijack day
        # itself, so pDNS evidence of the whole attack concentrates on as
        # few days as the redirect span allows (Section 5.3).
        issue_day = spec.hijack_date
        issue_at = datetime.combine(issue_day, time(2, 0))
        window_end = issue_at + timedelta(hours=2)
        if rogue_ns_names:
            set_delegation(rogue_ns_names, issue_at, window_end)
        strip_ds(issue_at, window_end)
        rogue_ns.add_record(
            spec.target_fqdn, RRType.A, attacker_ip, start=issue_at, end=window_end
        )
        malicious_cert = world.acme_order(
            spec.ca_name, (spec.target_fqdn,), rogue_ns, at=issue_at
        )

    # Deploy on the counterfeit host where scans can observe it.
    serve_cert: Certificate | None = None
    if spec.mode in (CampaignMode.T1, CampaignMode.T1_NO_PDNS, CampaignMode.PIVOT):
        serve_cert = malicious_cert
    elif spec.mode in (CampaignMode.T2, CampaignMode.PRELUDE_ONLY, CampaignMode.PRELUDE_REDIRECT):
        # The proxy tunnels to the legitimate host, so scans see the
        # certificate the victim is serving *at hijack time*.
        serve_cert = victim.cert_at(spec.hijack_date)
    if serve_cert is not None:
        serve_from = (issue_day or spec.hijack_date) + timedelta(days=1)
        world.hosts.add_service(
            attacker_ip,
            (443, 993, 995),
            serve_cert,
            DateInterval(serve_from, serve_from + timedelta(days=spec.serve_days)),
        )

    # Active hijack: short redirection windows.
    redirects = spec.mode in (
        CampaignMode.T1,
        CampaignMode.T1_NO_PDNS,
        CampaignMode.T2,
        CampaignMode.PIVOT,
        CampaignMode.PRELUDE_REDIRECT,
    )
    if redirects:
        for start in _window_starts(spec):
            end = start + timedelta(hours=spec.redirect_hours)
            if rogue_ns_names:
                set_delegation(rogue_ns_names, start, end)
            strip_ds(start, end)
            rogue_ns.add_record(
                spec.target_fqdn, RRType.A, attacker_ip, start=start, end=end
            )

    # Passive-DNS visibility of the attack.
    if spec.pdns_visible and redirects:
        world.plan.add_dense_window(spec.target_fqdn, spec.hijack_date, radius_days=10)
        if issue_day is not None:
            world.plan.add_dense_window(spec.target_fqdn, issue_day, radius_days=5)
    elif not spec.pdns_visible:
        blackout = DateInterval(
            spec.hijack_date - timedelta(days=45),
            spec.hijack_date + timedelta(days=45),
        )
        world.pdns_blackout(victim.domain, blackout)

    # Post hijack: the rare case where the victim notices and revokes.
    revoked = False
    if malicious_cert is not None and spec.revoked_after_days is not None:
        revoke_on = (issue_day or spec.hijack_date) + timedelta(days=spec.revoked_after_days)
        world.authorities[malicious_cert.issuer].revoke(
            malicious_cert, revoke_on, reason="hijack discovered"
        )
        revoked = True

    kind = (
        AttackKind.TARGETED
        if spec.mode in (CampaignMode.PRELUDE_ONLY, CampaignMode.PRELUDE_REDIRECT)
        else AttackKind.HIJACKED
    )
    record = AttackRecord(
        domain=victim.domain,
        target_fqdn=spec.target_fqdn,
        kind=kind,
        expected_detection=spec.expected_detection,
        hijack_date=spec.hijack_date,
        victim_cc=spec.victim_cc,
        sector=spec.sector,
        attacker_ips=(attacker_ip,),
        attacker_asn=provider.asn,
        attacker_cc=attacker_cc,
        attacker_ns=rogue_ns_names,
        legit_asns=tuple(p.asn for p in victim.providers),
        legit_ccs=tuple(dict.fromkeys(c for p in victim.providers for c in p.countries)),
        ca=malicious_cert.issuer if malicious_cert else None,
        crtsh_id=malicious_cert.crtsh_id if malicious_cert else 0,
        pdns_visible=spec.pdns_visible,
        ct_visible=malicious_cert is not None,
        revoked=revoked,
        redirect_days=spec.redirect_span_days,
        notes=spec.notes,
    )
    world.ground_truth.add(record)
    return record
