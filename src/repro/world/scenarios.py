"""Prebuilt scenarios, including the full paper scenario.

``paper_world()`` encodes the study's findings (Tables 2 and 3 of the
paper) as ground truth: every hijacked and targeted domain with its
country, sector, targeted subdomain, attack month, attacker IP/ASN and
geolocation, issuing CA, corroboration visibility, and pivot-cluster
membership.  Executing the scenario runs the actual attacker playbook
against each victim, so the evaluation measures whether the pipeline
*recovers* these facts from the generated data — they are inputs to the
simulation, not to the detector.

Smaller scenarios (``small_world``, ``kyrgyzstan_world``) support tests
and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Callable

from repro.core.types import DetectionType
from repro.net.timeline import STUDY_END, STUDY_START, DateInterval
from repro.world.attacker import AttackerProfile, CampaignMode, CampaignSpec, run_campaign
from repro.world.behaviors import populate_background, standard_background_providers
from repro.world.entities import Organization, Sector
from repro.world.sim import StudyDatasets, run_study
from repro.world.world import DomainDeployment, World

_MONTHS = {
    "Jan": 1, "Feb": 2, "Mar": 3, "Apr": 4, "May": 5, "Jun": 6,
    "Jul": 7, "Aug": 8, "Sep": 9, "Oct": 10, "Nov": 11, "Dec": 12,
}


def _month_to_date(label: str) -> date:
    """Parse "May'18" into the campaign date used in the simulation.

    June and December campaigns run on the 1st so the attacker's brief
    deployment cannot brush the six-month period boundary (weekly scans
    would otherwise see it 'persisting to the period edge').
    """
    month = _MONTHS[label[:3]]
    year = 2000 + int(label[-2:])
    day = 1 if month in (6, 12) else 10
    return date(year, month, day)


@dataclass(frozen=True)
class VictimRow:
    """One row of Table 2 (hijacked) or Table 3 (targeted)."""

    detection: str          # "T1" / "T1*" / "T2" / "P-IP" / "P-NS" / "TAR"
    month: str              # e.g. "May'18"
    cc: str
    domain: str
    sub: str                # "" = the registered domain itself
    pdns: bool
    ct: bool
    ip: str
    asn: int
    attacker_cc: str
    legit_asns: tuple[int, ...]
    legit_ccs: tuple[str, ...]
    ca: str | None
    sector: Sector
    ns_cluster: str | None = None
    revoked: bool = False
    scannable: bool = True
    noisy_map: bool = False
    redirect_span_days: int = 1
    internal_ca: bool = False
    dnssec: bool = False


_S = Sector

# Table 2 of the paper: the 41 hijacked domains.  NS-cluster membership is
# a simulation choice consistent with the reported shared infrastructure
# (P-NS victims share a cluster with at least one directly-detected one).
HIJACKED_ROWS: tuple[VictimRow, ...] = (
    VictimRow("T1", "May'18", "AE", "mofa.gov.ae", "webmail", True, True,
              "146.185.143.158", 14061, "NL", (5384, 202024), ("AE",), "Comodo",
              _S.GOVERNMENT_MINISTRY, "st-a"),
    VictimRow("T1", "Sep'18", "AE", "adpolice.gov.ae", "advpn", True, True,
              "185.20.187.8", 50673, "NL", (5384,), ("AE",), "Let's Encrypt",
              _S.LAW_ENFORCEMENT, "st-a"),
    VictimRow("T1*", "Sep'18", "AE", "apc.gov.ae", "mail", False, True,
              "185.20.187.8", 50673, "NL", (5384,), ("AE",), "Let's Encrypt",
              _S.LAW_ENFORCEMENT, "st-a"),
    VictimRow("T2", "Sep'18", "AE", "mgov.ae", "mail", True, True,
              "185.20.187.8", 50673, "NL", (202024,), ("AE",), "Let's Encrypt",
              _S.GOVERNMENT_ORGANIZATION, "st-a"),
    VictimRow("T1", "Jan'18", "AL", "e-albania.al", "owa", True, True,
              "185.15.247.140", 24961, "DE", (5576,), ("AL",), "Let's Encrypt",
              _S.GOVERNMENT_INTERNET_SERVICES, "st-a", redirect_span_days=2),
    VictimRow("T2", "Nov'18", "AL", "asp.gov.al", "mail", True, True,
              "199.247.3.191", 20473, "DE", (201524,), ("AL",), "Comodo",
              _S.LAW_ENFORCEMENT, "st-a", revoked=True),
    VictimRow("T1", "Nov'18", "AL", "shish.gov.al", "mail", True, True,
              "37.139.11.155", 14061, "NL", (5576,), ("AL",), "Let's Encrypt",
              _S.INTELLIGENCE_SERVICES, "st-a", internal_ca=True),
    VictimRow("T1", "Dec'18", "CY", "govcloud.gov.cy", "personal", True, True,
              "178.62.218.244", 14061, "NL", (50233,), ("CY",), "Comodo",
              _S.GOVERNMENT_INTERNET_SERVICES, "st-b", redirect_span_days=2),
    VictimRow("P-IP", "Dec'18", "CY", "owa.gov.cy", "", True, True,
              "178.62.218.244", 14061, "NL", (50233,), ("CY",), "Comodo",
              _S.GOVERNMENT_INTERNET_SERVICES, None, noisy_map=True),
    VictimRow("T1", "Dec'18", "CY", "webmail.gov.cy", "", True, True,
              "178.62.218.244", 14061, "NL", (50233,), ("CY",), "Comodo",
              _S.GOVERNMENT_INTERNET_SERVICES, "st-b"),
    VictimRow("P-IP", "Jan'19", "CY", "cyta.com.cy", "mbox", True, True,
              "178.62.218.244", 14061, "NL", (), (), "Comodo",
              _S.INFRASTRUCTURE_PROVIDER, None, revoked=True, scannable=False),
    VictimRow("T1", "Jan'19", "CY", "sslvpn.gov.cy", "", True, True,
              "178.62.218.244", 14061, "NL", (50233,), ("CY",), "Comodo",
              _S.GOVERNMENT_INTERNET_SERVICES, "st-b", redirect_span_days=3),
    VictimRow("T1", "Feb'19", "CY", "defa.com.cy", "mail", True, True,
              "108.61.123.149", 20473, "FR", (35432,), ("CY",), "Comodo",
              _S.ENERGY_COMPANY, "st-b"),
    VictimRow("T1", "Nov'18", "EG", "mfa.gov.eg", "mail", True, True,
              "188.166.119.57", 14061, "NL", (37066,), ("EG",), "Let's Encrypt",
              _S.GOVERNMENT_MINISTRY, "st-a", redirect_span_days=4),
    VictimRow("T2", "Nov'18", "EG", "mod.gov.eg", "mail", True, True,
              "188.166.119.57", 14061, "NL", (25576,), ("EG",), "Let's Encrypt",
              _S.GOVERNMENT_MINISTRY, "st-a"),
    VictimRow("T2", "Nov'18", "EG", "nmi.gov.eg", "mail", True, True,
              "188.166.119.57", 14061, "NL", (31065,), ("EG",), "Comodo",
              _S.GOVERNMENT_ORGANIZATION, "st-a"),
    VictimRow("T1", "Nov'18", "EG", "petroleum.gov.eg", "mail", True, True,
              "206.221.184.133", 20473, "US", (24835, 37191), ("EG",), "Let's Encrypt",
              _S.GOVERNMENT_MINISTRY, "st-a", redirect_span_days=2),
    VictimRow("T1", "Apr'19", "GR", "kyvernisi.gr", "mail", True, True,
              "95.179.131.225", 20473, "NL", (35506,), ("GR",), "Let's Encrypt",
              _S.GOVERNMENT_INTERNET_SERVICES, "st-b"),
    VictimRow("T1", "Apr'19", "GR", "mfa.gr", "pop3", True, True,
              "95.179.131.225", 20473, "NL", (35506, 6799), ("GR",), "Let's Encrypt",
              _S.GOVERNMENT_MINISTRY, "st-b", redirect_span_days=2),
    VictimRow("T2", "Sep'18", "IQ", "mofa.gov.iq", "mail", True, True,
              "82.196.9.10", 14061, "NL", (50710,), ("IQ",), "Let's Encrypt",
              _S.GOVERNMENT_MINISTRY, "st-a"),
    VictimRow("P-IP", "Nov'18", "IQ", "inc-vrdl.iq", "", True, True,
              "199.247.3.191", 20473, "DE", (50710,), ("IQ",), "Let's Encrypt",
              _S.GOVERNMENT_INTERNET_SERVICES, None, scannable=False),
    VictimRow("P-NS", "Dec'18", "JO", "gid.gov.jo", "", True, True,
              "139.162.144.139", 63949, "DE", (), (), "Let's Encrypt",
              _S.INTELLIGENCE_SERVICES, "st-a", scannable=False),
    VictimRow("P-NS", "Dec'20", "KG", "fiu.gov.kg", "mail", True, True,
              "178.20.41.140", 48282, "RU", (), (), "Let's Encrypt",
              _S.INTELLIGENCE_SERVICES, "kg", scannable=False),
    VictimRow("T1", "Dec'20", "KG", "invest.gov.kg", "mail", True, True,
              "94.103.90.182", 48282, "RU", (39659,), ("KG",), "Let's Encrypt",
              _S.GOVERNMENT_ORGANIZATION, "kg", redirect_span_days=7),
    VictimRow("T1", "Dec'20", "KG", "mfa.gov.kg", "mail", True, True,
              "94.103.91.159", 48282, "RU", (39659,), ("KG",), "Let's Encrypt",
              _S.GOVERNMENT_MINISTRY, "kg", redirect_span_days=7),
    VictimRow("P-NS", "Jan'21", "KG", "infocom.kg", "mail", True, True,
              "195.2.84.10", 48282, "RU", (), (), "Let's Encrypt",
              _S.INFRASTRUCTURE_PROVIDER, "kg", scannable=False),
    VictimRow("T1", "Dec'17", "KW", "csb.gov.kw", "mail", True, True,
              "82.102.14.232", 20860, "GB", (6412,), ("KW",), "Let's Encrypt",
              _S.GOVERNMENT_MINISTRY, "st-a", internal_ca=True),
    VictimRow("P-IP", "Dec'18", "KW", "dgca.gov.kw", "mail", True, True,
              "185.15.247.140", 24961, "DE", (), (), "Let's Encrypt",
              _S.CIVIL_AVIATION, None, scannable=False),
    VictimRow("T1*", "Apr'19", "KW", "moh.gov.kw", "webmail", False, True,
              "91.132.139.200", 9009, "AT", (21050,), ("KW",), "Let's Encrypt",
              _S.GOVERNMENT_MINISTRY, "st-b"),
    VictimRow("T2", "May'19", "KW", "kotc.com.kw", "mail2010", True, True,
              "91.132.139.200", 9009, "AT", (57719,), ("KW",), "Let's Encrypt",
              _S.ENERGY_COMPANY, "st-b", redirect_span_days=2),
    VictimRow("P-IP", "Nov'18", "LB", "finance.gov.lb", "webmail", True, True,
              "185.20.187.8", 50673, "NL", (), (), "Let's Encrypt",
              _S.GOVERNMENT_MINISTRY, None, scannable=False),
    VictimRow("P-IP", "Nov'18", "LB", "mea.com.lb", "memail", True, True,
              "185.20.187.8", 50673, "NL", (), (), "Let's Encrypt",
              _S.CIVIL_AVIATION, None, scannable=False),
    VictimRow("T1", "Nov'18", "LB", "medgulf.com.lb", "mail", True, True,
              "185.161.209.147", 50673, "NL", (31126,), ("LB",), "Let's Encrypt",
              _S.INSURANCE, "st-a"),
    VictimRow("T1", "Nov'18", "LB", "pcm.gov.lb", "mail1", True, True,
              "185.20.187.8", 50673, "NL", (51167,), ("DE",), "Let's Encrypt",
              _S.GOVERNMENT_MINISTRY, "st-a", redirect_span_days=2),
    VictimRow("P-IP", "Oct'18", "LY", "embassy.ly", "", True, False,
              "188.166.119.57", 14061, "NL", (), (), None,
              _S.GOVERNMENT_ORGANIZATION, None, scannable=False),
    VictimRow("P-NS", "Oct'18", "LY", "foreign.ly", "", True, True,
              "188.166.119.57", 14061, "NL", (), (), "Let's Encrypt",
              _S.GOVERNMENT_MINISTRY, "st-a", scannable=False),
    VictimRow("T1", "Oct'18", "LY", "noc.ly", "mail", True, True,
              "188.166.119.57", 14061, "NL", (37284,), ("LY",), "Let's Encrypt",
              _S.ENERGY_COMPANY, "st-a", redirect_span_days=3),
    VictimRow("T1", "Jan'18", "NL", "ocom.com", "connect", True, True,
              "147.75.205.145", 54825, "US", (60781,), ("NL",), "Comodo",
              _S.INFRASTRUCTURE_PROVIDER, "st-a", dnssec=True),
    VictimRow("P-NS", "Jan'19", "SE", "netnod.se", "dnsnodeapi", True, True,
              "139.59.134.216", 14061, "DE", (), (), "Comodo",
              _S.INFRASTRUCTURE_PROVIDER, "st-b", revoked=True, noisy_map=True,
              dnssec=True),
    VictimRow("T1", "Mar'19", "SY", "syriatel.sy", "mail", True, True,
              "45.77.137.65", 20473, "NL", (29256,), ("SY",), "Let's Encrypt",
              _S.INFRASTRUCTURE_PROVIDER, "st-b", internal_ca=True),
    VictimRow("P-NS", "Dec'18", "US", "pch.net", "keriomail", True, True,
              "159.89.101.204", 14061, "DE", (), (), "Comodo",
              _S.INFRASTRUCTURE_PROVIDER, "st-b", revoked=True,
              redirect_span_days=20, scannable=False, dnssec=True),
)

# Table 3 of the paper: the 24 targeted (prelude-only) domains.
TARGETED_ROWS: tuple[VictimRow, ...] = (
    VictimRow("TAR", "Apr'20", "AE", "milmail.ae", "", False, False,
              "194.152.42.16", 47220, "RO", (5384,), ("AE",), None,
              _S.GOVERNMENT_MINISTRY),
    VictimRow("TAR", "Apr'20", "AE", "mocaf.gov.ae", "", False, False,
              "194.152.42.16", 47220, "RO", (5384,), ("AE",), None,
              _S.GOVERNMENT_MINISTRY),
    VictimRow("TAR", "Apr'20", "AE", "moi.gov.ae", "", False, False,
              "194.152.42.16", 47220, "RO", (5384,), ("AE",), None,
              _S.GOVERNMENT_MINISTRY),
    VictimRow("TAR", "Dec'20", "AE", "epg.gov.ae", "", False, False,
              "159.69.193.152", 24940, "DE", (202024,), ("AE",), None,
              _S.POSTAL_SERVICE),
    VictimRow("TAR", "Jun'20", "CH", "parlament.ch", "", False, False,
              "8.210.146.182", 45102, "SG", (61098, 3303), ("CH",), None,
              _S.GOVERNMENT_ORGANIZATION),
    VictimRow("TAR", "Nov'20", "GH", "nita.gov.gh", "", False, False,
              "78.141.218.158", 20473, "NL", (37313,), ("GH",), None,
              _S.GOVERNMENT_ORGANIZATION),
    VictimRow("TAR", "Sep'17", "JO", "psd.gov.jo", "mail", False, False,
              "185.162.235.106", 50673, "NL", (8934,), ("JO",), None,
              _S.LAW_ENFORCEMENT),
    VictimRow("TAR", "Jun'20", "KZ", "zerde.gov.kz", "", False, False,
              "8.210.190.81", 45102, "SG", (48716, 15549), ("KZ",), None,
              _S.GOVERNMENT_ORGANIZATION),
    VictimRow("TAR", "Nov'20", "LT", "stat.gov.lt", "", False, False,
              "8.210.190.214", 45102, "SG", (6769,), ("LT",), None,
              _S.GOVERNMENT_MINISTRY),
    VictimRow("TAR", "Jul'20", "LV", "iem.gov.lv", "", False, False,
              "8.210.199.85", 45102, "SG", (8194, 25241), ("LV",), None,
              _S.GOVERNMENT_MINISTRY),
    VictimRow("TAR", "Nov'20", "LV", "zva.gov.lv", "", False, False,
              "8.210.36.66", 45102, "SG", (8194, 199300), ("LV",), None,
              _S.GOVERNMENT_ORGANIZATION),
    VictimRow("TAR", "Apr'18", "MA", "justice.gov.ma", "micj", True, False,
              "188.166.160.110", 14061, "DE", (6713,), ("MA",), None,
              _S.GOVERNMENT_MINISTRY),
    VictimRow("TAR", "Apr'20", "MA", "mem.gov.ma", "", False, False,
              "47.75.34.153", 45102, "HK", (6713,), ("MA",), None,
              _S.GOVERNMENT_MINISTRY),
    VictimRow("TAR", "Oct'20", "MM", "mofa.gov.mm", "", False, False,
              "47.242.150.18", 45102, "US", (136465,), ("MM",), None,
              _S.GOVERNMENT_MINISTRY),
    VictimRow("TAR", "Nov'20", "PL", "knf.gov.pl", "", False, False,
              "103.195.6.231", 64022, "HK", (34986,), ("PL",), None,
              _S.GOVERNMENT_MINISTRY),
    VictimRow("TAR", "May'20", "SA", "cmail.sa", "", False, False,
              "194.152.42.16", 47220, "RO", (49474,), ("SA",), None,
              _S.IT_FIRM),
    VictimRow("TAR", "Sep'20", "TM", "turkmenpost.gov.tm", "", False, False,
              "185.229.225.228", 41436, "NL", (20661,), ("TM",), None,
              _S.POSTAL_SERVICE),
    VictimRow("TAR", "Aug'20", "US", "manchesternh.gov", "", False, False,
              "8.210.210.235", 45102, "SG", (13977,), ("US",), None,
              _S.LOCAL_GOVERNMENT),
    VictimRow("TAR", "Dec'20", "US", "batesvillearkansas.gov", "host", False, False,
              "95.179.153.176", 20473, "NL", (32244,), ("US",), None,
              _S.LOCAL_GOVERNMENT),
    VictimRow("TAR", "Apr'19", "VN", "ais.gov.vn", "intranet", True, False,
              "45.77.45.193", 20473, "SG", (131375, 63748), ("VN",), None,
              _S.GOVERNMENT_ORGANIZATION),
    VictimRow("TAR", "Dec'20", "VN", "mofa.gov.vn", "", False, False,
              "45.77.27.9", 20473, "JP", (24035,), ("VN",), None,
              _S.GOVERNMENT_MINISTRY),
    VictimRow("TAR", "Mar'20", "VN", "cpt.gov.vn", "", False, False,
              "103.213.244.205", 136574, "JP", (63747,), ("VN",), None,
              _S.POSTAL_SERVICE),
    VictimRow("TAR", "Mar'20", "VN", "most.gov.vn", "", False, False,
              "103.213.244.205", 136574, "JP", (38731, 131373), ("VN",), None,
              _S.GOVERNMENT_MINISTRY),
    VictimRow("TAR", "Sep'20", "VN", "vass.gov.vn", "", False, False,
              "47.74.3.121", 45102, "JP", (18403,), ("VN",), None,
              _S.GOVERNMENT_ORGANIZATION),
)

_NS_CLUSTERS = {
    "st-a": "rogue-dns-a.net",
    "st-b": "rogue-dns-b.net",
    "kg": "kg-infocom.ru",
}

_DETECTION_OF = {
    "T1": DetectionType.T1,
    "T1*": DetectionType.T1_STAR,
    "T2": DetectionType.T2,
    "P-IP": DetectionType.P_IP,
    "P-NS": DetectionType.P_NS,
    "TAR": DetectionType.T2_TARGETED,
}


def _attacker_prefixes(rows: tuple[VictimRow, ...]) -> dict[int, list[tuple[str, str]]]:
    """Per-ASN /24 prefixes covering every attacker IP, geo-tagged per IP.

    Real clouds announce many prefixes geolocating to different countries;
    per-/24 granularity reproduces the per-row attacker country codes.
    """
    prefixes: dict[int, dict[str, str]] = {}
    for row in rows:
        octets = row.ip.split(".")
        cidr = f"{octets[0]}.{octets[1]}.{octets[2]}.0/24"
        per_asn = prefixes.setdefault(row.asn, {})
        per_asn.setdefault(cidr, row.attacker_cc)
    return {
        asn: [(cidr, cc) for cidr, cc in per_asn.items()]
        for asn, per_asn in prefixes.items()
    }


def _mode_of(row: VictimRow) -> CampaignMode:
    if row.detection == "T1":
        return CampaignMode.T1
    if row.detection == "T1*":
        return CampaignMode.T1_NO_PDNS
    if row.detection == "T2":
        return CampaignMode.T2
    if row.detection in ("P-IP", "P-NS"):
        return CampaignMode.PIVOT
    if row.pdns:  # targeted with pDNS evidence: redirection, no certificate
        return CampaignMode.PRELUDE_REDIRECT
    return CampaignMode.PRELUDE_ONLY


class _AuxAllocator:
    """Deterministic allocator for scenario-internal providers (unseen
    victim hosting, noisy-map hop providers).  Hands out unique ASNs and
    /16 prefixes in the 10.176.0.0/12 block, clear of the victim-provider
    (10.128+) and background (10.0-10.87) ranges."""

    def __init__(self) -> None:
        self._next_asn = 90_001
        self._next_octet = 176

    def asn(self) -> int:
        asn = self._next_asn
        self._next_asn += 1
        return asn

    def prefix(self) -> str:
        if self._next_octet > 255:
            raise RuntimeError("auxiliary prefix space exhausted")
        octet = self._next_octet
        self._next_octet += 1
        return f"10.{octet}.0.0/16"


def _setup_victim(
    world: World, row: VictimRow, provider_of: dict[int, object], aux: _AuxAllocator
) -> DomainDeployment:
    services: tuple[str, ...] = ("www", row.sub) if row.sub else ("",)
    if not row.legit_asns:
        # No stable scan-visible infrastructure: give the victim a private
        # (unregistered-in-scan) hosting slot for DNS only.
        provider = world.add_provider(
            f"unseen-{row.domain.replace('.', '-')}",
            aux.asn(),
            [(aux.prefix(), row.cc)],
        )
        providers = [provider]
    else:
        providers = [provider_of[asn] for asn in row.legit_asns]
    organization = Organization(
        name=row.domain, sector=row.sector, country=row.cc
    )
    ca_name = "Internal Enterprise CA" if row.internal_ca else "DigiCert Inc"
    deployment = world.setup_domain(
        row.domain,
        providers,  # type: ignore[arg-type]
        organization=organization,
        services=services,
        ca_name=ca_name,
        scannable=row.scannable and not row.noisy_map,
        dnssec=row.dnssec,
    )
    if row.noisy_map:
        _make_noisy(world, deployment, row, aux)
    return deployment


def _make_noisy(
    world: World, victim: DomainDeployment, row: VictimRow, aux: _AuxAllocator
) -> None:
    """Scatter the victim across many short-lived deployments (owa.gov.cy,
    netnod.se: maps with too many deployments to classify)."""
    from datetime import timedelta

    hop_providers = [
        world.add_provider(
            f"hop-{row.domain.replace('.', '-')}-{i}", aux.asn(), [(aux.prefix(), cc)]
        )
        for i, cc in enumerate(("US", "DE", "FR", "GB", "NL"))
    ]
    start = world.start
    i = 0
    while start < world.end:
        end = min(start + timedelta(days=45), world.end)
        provider = hop_providers[i % len(hop_providers)]
        cert = victim.cert_at(start) or victim.certificates[0]
        world.hosts.add_service(provider.allocate(), (443,), cert, DateInterval(start, end))
        start = end + timedelta(days=20)
        i += 1


def paper_world(seed: int = 7, n_background: int = 150) -> World:
    """Build the full paper scenario (Tables 2 + 3 as ground truth)."""
    world = World(seed=seed)
    all_rows = HIJACKED_ROWS + TARGETED_ROWS

    # Attacker-side providers with the paper's exact IPs.
    from repro.ipintel.asnames import AS_NAMES

    attacker_providers = {
        asn: world.add_provider(AS_NAMES.get(asn, f"AS{asn}"), asn, prefixes)
        for asn, prefixes in _attacker_prefixes(all_rows).items()
    }

    # Victim-side providers.
    victim_asns: list[tuple[int, str]] = []
    for row in all_rows:
        for asn, cc in zip(row.legit_asns, row.legit_ccs * len(row.legit_asns)):
            if asn not in dict(victim_asns):
                victim_asns.append((asn, cc))
    provider_of = {}
    for index, (asn, cc) in enumerate(victim_asns):
        provider_of[asn] = world.add_provider(
            AS_NAMES.get(asn, f"AS{asn}"), asn, [(f"10.{128 + index}.0.0/16", cc)]
        )

    # Attacker actors: pivot clusters share rogue nameserver infrastructure.
    profiles = {
        key: AttackerProfile(name=f"actor-{key}", ns_domain=domain)
        for key, domain in _NS_CLUSTERS.items()
    }
    lone_actor = AttackerProfile(name="actor-2020", ns_domain=None)
    # Stage each cluster's rogue nameservers before its EARLIEST campaign
    # (campaign execution order is table order, not chronological).
    for key, profile in profiles.items():
        dates = [_month_to_date(r.month) for r in all_rows if r.ns_cluster == key]
        if dates:
            profile.ensure_staged(world, min(dates))

    aux = _AuxAllocator()
    for index, row in enumerate(all_rows):
        victim = _setup_victim(world, row, provider_of, aux)
        mode = _mode_of(row)
        profile = profiles.get(row.ns_cluster) if row.ns_cluster else lone_actor
        use_own_ns = row.ns_cluster is None and mode is not CampaignMode.PRELUDE_ONLY
        hijack = _month_to_date(row.month)
        # Serving-window mix reproducing Section 5.3: a 6-day window hits
        # exactly one weekly scan, a 13-day window exactly two, and a few
        # attackers leave infrastructure up much longer.  June/December
        # campaigns stay short so the transient cannot brush the period
        # boundary.
        if hijack.month in (6, 12) or row.domain == "kyvernisi.gr":
            # kyvernisi.gr is the paper's canonical example (Table 1 /
            # Figure 2): its transient appears in a single weekly scan.
            serve_days = 6
        elif index % 9 == 8:
            serve_days = 27
        elif index % 3 == 2:
            serve_days = 13
        else:
            serve_days = 6
        spec = CampaignSpec(
            victim=victim,
            sector=row.sector,
            victim_cc=row.cc,
            mode=mode,
            expected_detection=_DETECTION_OF[row.detection],
            hijack_date=hijack,
            attacker=profile or lone_actor,
            attacker_provider=attacker_providers[row.asn],
            attacker_ip=row.ip,
            target_subdomain=row.sub,
            ca_name=row.ca,
            serve_days=serve_days,
            redirect_span_days=row.redirect_span_days,
            redirect_windows=2 if row.redirect_span_days <= 2 else 4,
            redirect_hours=26 if row.domain == "pch.net" else 6,
            pdns_visible=row.pdns,
            revoked_after_days=30 if row.revoked else None,
            use_own_ns_names=use_own_ns,
        )
        run_campaign(world, spec)

    if n_background:
        populate_background(
            world,
            n_background,
            DateInterval(world.start, world.end),
            pool=standard_background_providers(world),
        )
    return world


def paper_study(seed: int = 7, n_background: int = 150) -> StudyDatasets:
    """Build and run the full paper scenario."""
    return run_study(paper_world(seed=seed, n_background=n_background))


def kyrgyzstan_world(
    seed: int = 7, n_background: int = 30, extended: bool = False
) -> World:
    """Just the Section 5.1 case study: the four .kg victims.

    With ``extended=True`` the world runs through June 2021 and includes
    the Appendix A evolution: the May 2021 re-redirection of
    mail.mfa.gov.kg to a new VDSINA address whose counterfeit Zimbra page
    carries the injected "security update" lure (Figure 6) that delivered
    the Tomiris downloader.
    """
    end = date(2021, 6, 30) if extended else date(2021, 3, 31)
    world = World(seed=seed, start=date(2020, 1, 1), end=end)
    kg_rows = tuple(r for r in HIJACKED_ROWS if r.domain.endswith(".kg") or r.domain.endswith("infocom.kg"))
    from repro.ipintel.asnames import AS_NAMES

    attacker_providers = {
        asn: world.add_provider(AS_NAMES.get(asn, f"AS{asn}"), asn, prefixes)
        for asn, prefixes in _attacker_prefixes(kg_rows).items()
    }
    provider_of = {}
    for index, row in enumerate(kg_rows):
        for asn in row.legit_asns:
            if asn not in provider_of:
                provider_of[asn] = world.add_provider(
                    AS_NAMES.get(asn, f"AS{asn}"), asn, [(f"10.{128 + index}.0.0/16", "KG")]
                )
    profile = AttackerProfile(name="actor-kg", ns_domain="kg-infocom.ru")
    aux = _AuxAllocator()
    for row in kg_rows:
        victim = _setup_victim(world, row, provider_of, aux)
        spec = CampaignSpec(
            victim=victim,
            sector=row.sector,
            victim_cc=row.cc,
            mode=_mode_of(row),
            expected_detection=_DETECTION_OF[row.detection],
            hijack_date=_month_to_date(row.month),
            attacker=profile,
            attacker_provider=attacker_providers[row.asn],
            attacker_ip=row.ip,
            target_subdomain=row.sub,
            ca_name=row.ca,
            serve_days=8,
            redirect_span_days=row.redirect_span_days,
            pdns_visible=row.pdns,
        )
        run_campaign(world, spec)
        if row.domain == "mfa.gov.kg":
            _stage_kyrgyz_http(world, victim, extended)
    if n_background:
        populate_background(world, n_background, DateInterval(world.start, world.end))
    return world


def _stage_kyrgyz_http(world: World, victim: DomainDeployment, extended: bool) -> None:
    """HTTP content for the Appendix A analysis.

    The legitimate mail.mfa.gov.kg runs a Zimbra login page; the
    December 2020 counterfeit mimics it (same look, different code); the
    extended world adds the May 2021 server with the injected
    update-mfa.exe lure (Figure 6).
    """
    from datetime import timedelta

    from repro.scan.http import HttpResponse

    zimbra = HttpResponse.login_page("Zimbra Web Client", operator="mfa.gov.kg")
    world.http.serve(victim.ips[0], zimbra, DateInterval(world.start, world.end))

    truth = world.ground_truth.record_for("mfa.gov.kg")
    dec_ip = truth.attacker_ips[0]
    dec_start = truth.hijack_date
    world.http.serve(
        dec_ip,
        zimbra.mimicked_by(attacker="actor-kg"),
        DateInterval(dec_start, dec_start + timedelta(days=8)),
    )

    if extended:
        # May 2021: a new VDSINA address serves the counterfeit page plus
        # the social-engineering "security update" script.
        world.extend_provider(48282, "178.20.46.0/24", "RU")
        may_ip = world.providers[48282].claim("178.20.46.22")
        may_start = date(2021, 5, 10)
        world.http.serve(
            may_ip,
            zimbra.mimicked_by(attacker="actor-kg", scripts=("update-mfa.exe",)),
            DateInterval(may_start, may_start + timedelta(days=30)),
        )
        # The redirection itself, for pDNS/resolver consistency.
        cred = victim.registrar.compromise_account(victim.credential.username)
        from datetime import datetime, time as time_of_day

        from repro.dns.records import RRType

        window_start = datetime.combine(may_start, time_of_day(5, 0))
        window_end = window_start + timedelta(hours=12)
        victim.registrar.update_delegation(
            cred, victim.domain,
            ("ns1.kg-infocom.ru", "ns2.kg-infocom.ru"),
            start=window_start, end=window_end,
        )
        rogue_host = world.directory.host_for("ns1.kg-infocom.ru", window_start)
        if rogue_host is not None:
            rogue_host.add_record(
                "mail.mfa.gov.kg", RRType.A, may_ip,
                start=window_start, end=window_end,
            )
        world.plan.add_dense_window("mail.mfa.gov.kg", may_start, radius_days=5)


# -- the scenario-pack registry ------------------------------------------------
#
# A *pack* is a named, buildable scenario the evaluation arena (and any
# other cross-scenario sweep) can enumerate: a builder producing a full
# StudyDatasets — simulated datasets plus the ground-truth ledger the
# scorer needs — with the pack's canonical seed and background size as
# defaults.


@dataclass(frozen=True)
class ScenarioPack:
    """One registered scenario: how to build it, and its defaults."""

    name: str
    build: "Callable[[int, int], StudyDatasets]"
    default_seed: int
    default_background: int
    description: str = ""

    def study(
        self, seed: int | None = None, n_background: int | None = None
    ) -> StudyDatasets:
        return self.build(
            self.default_seed if seed is None else seed,
            self.default_background if n_background is None else n_background,
        )


_PACKS: "dict[str, ScenarioPack]" = {}


def register_pack(pack: ScenarioPack, *, replace: bool = False) -> None:
    """Register a scenario pack under its name."""
    if pack.name in _PACKS and not replace:
        raise ValueError(f"scenario pack {pack.name!r} is already registered")
    _PACKS[pack.name] = pack


def list_packs() -> tuple[str, ...]:
    """Registered pack names, sorted."""
    return tuple(sorted(_PACKS))


def get_pack(name: str) -> ScenarioPack:
    pack = _PACKS.get(name)
    if pack is None:
        known = ", ".join(sorted(_PACKS)) or "none"
        raise KeyError(f"unknown scenario pack {name!r} (registered: {known})")
    return pack


def build_pack(
    name: str, seed: int | None = None, n_background: int | None = None
) -> StudyDatasets:
    """Build and run a registered pack (defaults from the registration)."""
    return get_pack(name).study(seed, n_background)


def small_world(seed: int = 3, n_background: int = 25) -> World:
    """One T1 hijack against a small benign background (fast; for tests
    and the quickstart example)."""
    world = World(seed=seed, start=date(2018, 1, 1), end=date(2018, 12, 31))
    victim_provider = world.add_provider("victim-isp", 65001, [("10.128.0.0/16", "GR")])
    attacker_provider = world.add_provider("bullet-cloud", 65002, [("203.0.113.0/24", "NL")])
    victim = world.setup_domain(
        "example-ministry.gr",
        victim_provider,
        organization=Organization("Example Ministry", Sector.GOVERNMENT_MINISTRY, "GR"),
        services=("www", "mail"),
    )
    profile = AttackerProfile(name="demo-actor", ns_domain="rogue-demo.net")
    spec = CampaignSpec(
        victim=victim,
        sector=Sector.GOVERNMENT_MINISTRY,
        victim_cc="GR",
        mode=CampaignMode.T1,
        expected_detection=DetectionType.T1,
        hijack_date=date(2018, 8, 10),
        attacker=profile,
        attacker_provider=attacker_provider,
        target_subdomain="mail",
        ca_name="Let's Encrypt",
    )
    run_campaign(world, spec)
    if n_background:
        populate_background(world, n_background, DateInterval(world.start, world.end))
    return world


# The built-in packs.  "paper" is the study of record; "kyrgyzstan" the
# Section 5.1 case study; "small" the fast single-victim scenario tests
# and CI smoke runs use.
register_pack(ScenarioPack(
    name="paper",
    build=lambda seed, n_background: paper_study(seed, n_background),
    default_seed=7,
    default_background=150,
    description="full paper scenario (Tables 2 + 3, 65 victims)",
), replace=True)
register_pack(ScenarioPack(
    name="kyrgyzstan",
    build=lambda seed, n_background: run_study(
        kyrgyzstan_world(seed, n_background)
    ),
    default_seed=7,
    default_background=30,
    description="Section 5.1 case study (four .kg victims)",
), replace=True)
register_pack(ScenarioPack(
    name="small",
    build=lambda seed, n_background: run_study(small_world(seed, n_background)),
    default_seed=3,
    default_background=25,
    description="one T1 hijack against a small background (fast)",
), replace=True)
