"""The world container: one object holding every substrate, consistently.

``World`` owns the registries/registrars/nameservers, the CA + CT stack,
the scannable host population, the IP-intelligence tables, and the pDNS
observation plan.  Scenario builders use its helpers to stand up benign
domains (``setup_domain``) and hosting providers; the attacker module
manipulates the same objects through the same interfaces a real attacker
would (registrar credentials, ACME orders).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from datetime import date, datetime, time, timedelta

from repro.ca.acme import AcmeServer, ChallengePublisher
from repro.ca.authority import CertificateAuthority, default_authorities
from repro.ct.crtsh import CrtShService
from repro.ct.log import CTLog
from repro.dns.nameserver import NameserverDirectory, NameserverHost
from repro.dns.records import RRType
from repro.dns.registrar import Credential, Registrar
from repro.dns.registry import Registry
from repro.dns.resolver import RecursiveResolver
from repro.ipintel.as2org import AS2Org
from repro.ipintel.asnames import register_as_name
from repro.ipintel.geo import GeoDB
from repro.ipintel.pfx2as import RoutingTable
from repro.net.names import public_suffix, registered_domain
from repro.net.timeline import (
    STUDY_END,
    STUDY_START,
    DateInterval,
    Period,
    study_periods,
    scan_dates_every,
)
from repro.pdns.traffic import ObservationPlan
from repro.scan.host import HostPopulation, TLS_PORTS
from repro.scan.http import HttpContentStore
from repro.tls.certificate import Certificate
from repro.tls.revocation import RevocationRegistry
from repro.tls.truststore import TrustStore
from repro.world.entities import Organization, Sector
from repro.world.groundtruth import GroundTruthLedger
from repro.world.hosting import HostingProvider

_noon = time(12, 0)


def noon(day: date) -> datetime:
    """The canonical mid-day instant used for steady-state changes."""
    return datetime.combine(day, _noon)


@dataclass
class DomainDeployment:
    """Handle for one benign domain's legitimate setup."""

    domain: str
    organization: Organization
    credential: Credential
    registrar: Registrar
    ns_host: NameserverHost
    ns_names: tuple[str, ...]
    service_fqdns: tuple[str, ...]
    ips: tuple[str, ...]
    certificates: list[Certificate] = field(default_factory=list)
    providers: tuple[HostingProvider, ...] = ()
    scannable: bool = True

    @property
    def stable_cert(self) -> Certificate | None:
        return self.certificates[-1] if self.certificates else None

    def cert_at(self, day: date) -> Certificate | None:
        """The certificate in service on ``day`` (None before/after all)."""
        current: Certificate | None = None
        for cert in self.certificates:
            if cert.valid_on(day):
                current = cert
        return current


class World:
    """All substrates of one simulated study, built from a seed."""

    def __init__(
        self,
        seed: int = 0,
        start: date = STUDY_START,
        end: date = STUDY_END,
        scan_interval_days: int = 7,
    ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.start = start
        self.end = end
        self.scan_dates: tuple[date, ...] = scan_dates_every(
            start, end, scan_interval_days
        )
        self.periods: tuple[Period, ...] = study_periods(start, end)

        self.routing = RoutingTable()
        self.geo = GeoDB()
        self.as2org = AS2Org()

        self.directory = NameserverDirectory()
        self._registry_list: list[Registry] = []
        self.registrars: dict[str, Registrar] = {}
        self.resolver = RecursiveResolver(self._registry_list, self.directory)

        self.revocations = RevocationRegistry()
        self.trust = TrustStore()
        self.authorities: dict[str, CertificateAuthority] = default_authorities(
            self.revocations, self.trust
        )
        self.ct_log = CTLog()
        # Retroactive analysis happens well after the study window, when
        # every study-era certificate has expired — which is what makes
        # OCSP-only revocations unknowable (Table 9).
        self.crtsh = CrtShService(
            [self.ct_log], self.revocations, asof=end + timedelta(days=365)
        )
        self.acme: dict[str, AcmeServer] = {
            name: AcmeServer(ca, self.resolver, self.ct_log)
            for name, ca in self.authorities.items()
            if ca.profile.acme
        }

        self.hosts = HostPopulation()
        self.http = HttpContentStore()
        self.plan = ObservationPlan()
        self.pdns_blackouts: dict[str, list[DateInterval]] = {}
        self.ground_truth = GroundTruthLedger()
        self.providers: dict[int, HostingProvider] = {}
        self._org_counter = itertools.count(1)

    # -- substrate registration -------------------------------------------------

    def add_provider(
        self,
        name: str,
        asn: int,
        prefixes: list[tuple[str, str]],
        org_id: str | None = None,
    ) -> HostingProvider:
        """Register a hosting provider and its prefixes everywhere."""
        if asn in self.providers:
            return self.providers[asn]
        provider = HostingProvider.build(name, asn, prefixes, org_id)
        for pool in provider.pools:
            self.routing.add(pool.prefix, asn)
            self.geo.add(pool.prefix, pool.country)
        self.as2org.assign(asn, provider.org_id, name)
        register_as_name(asn, name)
        self.providers[asn] = provider
        return provider

    def extend_provider(self, asn: int, cidr: str, country: str) -> HostingProvider:
        """Announce an additional prefix for an existing provider."""
        provider = self.providers[asn]
        from repro.world.hosting import _PrefixPool
        from repro.net.ipv4 import IPv4Prefix

        pool = _PrefixPool(prefix=IPv4Prefix.parse(cidr), country=country.upper())
        provider.pools.append(pool)
        self.routing.add(pool.prefix, asn)
        self.geo.add(pool.prefix, pool.country)
        return provider

    def registry_for(self, domain: str) -> Registry:
        """Get (or create) the registry administering the domain's suffix."""
        suffix = public_suffix(domain)
        for registry in self._registry_list:
            if suffix in registry.suffixes:
                return registry
        registry = Registry(suffix)
        self._registry_list.append(registry)
        return registry

    def registrar(self, name: str = "default-registrar") -> Registrar:
        existing = self.registrars.get(name)
        if existing is not None:
            return existing
        created = Registrar(name, self._registry_list)
        self.registrars[name] = created
        return created

    # -- certificates -------------------------------------------------------------

    def issue_direct(
        self,
        ca_name: str,
        names: tuple[str, ...],
        on: date,
        log_to_ct: bool = True,
        validity_days: int | None = None,
    ) -> Certificate:
        """Issue without ACME (OV purchases, internal CAs)."""
        ca = self.authorities[ca_name]
        cert = ca.issue(names, on=on, validity_days=validity_days)
        if log_to_ct:
            cert, _sct = self.ct_log.submit(cert, timestamp=on)
        return cert

    def issue_chain(
        self,
        ca_name: str,
        names: tuple[str, ...],
        interval: DateInterval,
        log_to_ct: bool = True,
    ) -> list[Certificate]:
        """A rollover chain of certificates covering ``interval``."""
        if interval.end is None:
            raise ValueError("certificate chain needs a bounded interval")
        ca = self.authorities[ca_name]
        validity = ca.profile.validity_days
        certs: list[Certificate] = []
        issue_on = interval.start
        while issue_on <= interval.end:
            certs.append(self.issue_direct(ca_name, names, issue_on, log_to_ct))
            issue_on = issue_on + timedelta(days=max(validity - 14, 30))
        return certs

    # -- benign domain setup --------------------------------------------------------

    def setup_domain(
        self,
        domain: str,
        provider: HostingProvider | list[HostingProvider],
        organization: Organization | None = None,
        services: tuple[str, ...] = ("www", "mail"),
        ca_name: str = "DigiCert Inc",
        interval: DateInterval | None = None,
        scannable: bool = True,
        reliability: float = 1.0,
        registrar_name: str = "default-registrar",
        pdns_active: bool = True,
        ports: tuple[int, ...] = (443, 993, 995),
        dnssec: bool = False,
    ) -> DomainDeployment:
        """Stand up a legitimate domain end to end.

        Registers the domain, creates its authoritative nameservers and
        zone, allocates stable IPs with the provider(s), issues a
        certificate chain covering the interval, binds the certificates
        to the scan-visible hosts (unless ``scannable`` is False), and
        schedules background pDNS traffic for its service names.
        """
        domain = registered_domain(domain)
        providers = provider if isinstance(provider, list) else [provider]
        interval = interval or DateInterval(self.start, self.end)
        if interval.end is None:
            interval = DateInterval(interval.start, self.end)
        start_dt = noon(interval.start) - timedelta(days=30)

        organization = organization or Organization(
            name=f"org-{next(self._org_counter)}", sector=Sector.COMMERCIAL,
            country=providers[0].countries[0],
        )
        organization.domains.add(domain)

        registrar = self.registrar(registrar_name)
        credential = Credential(username=domain, password=f"pw-{domain}-{self.seed}")
        registrar.create_account(credential.username, credential.password)

        ns_host = NameserverHost(operator=organization.name)
        ns_names = (f"ns1.{domain}", f"ns2.{domain}")
        for ns_name in ns_names:
            self.directory.bind(ns_name, ns_host, start=start_dt)
        registry = self.registry_for(domain)  # ensure the suffix's registry exists
        registrar.register_domain(credential, domain, ns_names, at=start_dt)
        if dnssec:
            registry.set_ds(domain, (f"ds-{domain}",), start=start_dt)
            ns_host.sign_zone(domain, start=start_dt)

        # Service names: "" means the registered domain itself is a service.
        fqdns = tuple(
            domain if service == "" else f"{service}.{domain}" for service in services
        )
        ips: list[str] = []
        cert_names = fqdns
        certificates: list[Certificate] = []
        if ca_name == "Internal Enterprise CA":
            # Internal CAs never log to CT (so crt.sh sees only the
            # attacker's certificates for these victims, as the paper
            # observed), but the organization still rolls certificates.
            certificates = self.issue_chain(ca_name, cert_names, interval, log_to_ct=False)
        else:
            certificates = self.issue_chain(ca_name, cert_names, interval)

        for prov in providers:
            ip = prov.allocate()
            ips.append(ip)
            if scannable:
                for cert in certificates:
                    cert_interval = DateInterval(
                        max(cert.not_before, interval.start),
                        min(cert.not_after, interval.end or self.end),
                    )
                    self.hosts.add_service(
                        ip, ports, cert, cert_interval, reliability=reliability
                    )
        for fqdn in fqdns:
            ns_host.add_record(fqdn, RRType.A, tuple(ips), start=start_dt)

        if pdns_active:
            for fqdn in fqdns:
                self.plan.add_background(fqdn, interval)

        return DomainDeployment(
            domain=domain,
            organization=organization,
            credential=credential,
            registrar=registrar,
            ns_host=ns_host,
            ns_names=ns_names,
            service_fqdns=fqdns,
            ips=tuple(ips),
            certificates=certificates,
            providers=tuple(providers),
            scannable=scannable,
        )

    # -- pDNS controls ----------------------------------------------------------------

    def pdns_blackout(self, domain: str, interval: DateInterval) -> None:
        """Sensors never observed this domain's names during the interval."""
        self.pdns_blackouts.setdefault(registered_domain(domain), []).append(interval)

    def is_blacked_out(self, fqdn: str, day: date) -> bool:
        base = registered_domain(fqdn)
        return any(iv.contains(day) for iv in self.pdns_blackouts.get(base, ()))

    # -- ACME convenience ---------------------------------------------------------------

    def acme_order(
        self,
        ca_name: str,
        names: tuple[str, ...],
        publisher_host: NameserverHost,
        at: datetime,
    ) -> Certificate:
        """Request a certificate with DNS-01 validated via ``publisher_host``."""
        server = self.acme[ca_name]
        return server.request_certificate(names, ChallengePublisher(publisher_host), at)
