"""On-disk table segments: the ``repro-segment/1`` memory-mapped format.

The three evidence tables (scan, pDNS, CT) serialize their typed-array
columns, interned pools, and prebuilt CSR indexes into checksummed
segment files that reopen via ``mmap``.  A segment-backed table pickles
as its path alone, so process-pool workers attach to the mapping instead
of receiving a copied dataset — the no-fork-CoW, spawn-safe data plane
the shard scheduler in :mod:`repro.exec` partitions.
"""

from repro.segments.format import (
    Segment,
    SegmentChecksumError,
    SegmentError,
    SegmentWriter,
    verify_segment,
)
from repro.segments.inputs import (
    inputs_bytes_mapped,
    load_segment_inputs,
    segment_paths,
    write_segments,
)
from repro.segments.tables import (
    open_ct_table,
    open_pdns_table,
    open_scan_table,
    write_ct_table,
    write_pdns_table,
    write_scan_table,
)

__all__ = [
    "Segment",
    "SegmentChecksumError",
    "SegmentError",
    "SegmentWriter",
    "inputs_bytes_mapped",
    "load_segment_inputs",
    "open_ct_table",
    "open_pdns_table",
    "open_scan_table",
    "segment_paths",
    "verify_segment",
    "write_ct_table",
    "write_pdns_table",
    "write_scan_table",
]
