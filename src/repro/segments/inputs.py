"""Whole-input-bundle segment directories.

``write_segments`` lays a :class:`~repro.core.pipeline.PipelineInputs`
bundle into one directory of ``repro-segment/1`` files::

    scan.seg    the annotated scan table + its calendar
    pdns.seg    the aggregated passive-DNS table
    ct.seg      the published CT entry table
    aux.seg     everything small: AS2Org, periods, routing, geo,
                the CT service envelope, and the raw CT logs
                (loaded lazily, only for content fingerprinting
                and fault derivation)

``load_segment_inputs`` reopens the directory as a bundle whose three
evidence channels are mmap-backed: the scan dataset wraps a
:class:`~repro.segments.tables.SegmentScanTable`, the pDNS database a
:class:`~repro.segments.tables.SegmentPdnsTable` (row dicts hydrate only
if a pivot query needs them), and crt.sh a :class:`SegmentCrtShService`
that answers every query from the mapped table without touching the
pickled logs.  Content digests are unchanged — a segment-backed bundle
and its in-RAM twin produce the same ``inputs_digest``, so they share
cache entries and golden reports byte for byte.
"""

from __future__ import annotations

from datetime import date
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.ct.crtsh import CrtShService
from repro.pdns.database import PassiveDNSDatabase
from repro.scan.dataset import ScanDataset
from repro.segments.format import Segment, SegmentError, SegmentWriter
from repro.segments.tables import (
    open_ct_table,
    open_pdns_table,
    open_scan_table,
    write_ct_table,
    write_pdns_table,
    write_scan_table,
)

if TYPE_CHECKING:
    from repro.core.pipeline import PipelineInputs

#: Segment file names inside one bundle directory.
_FILES = {"scan": "scan.seg", "pdns": "pdns.seg", "ct": "ct.seg", "aux": "aux.seg"}


def segment_paths(directory: str | Path) -> dict[str, Path]:
    """The four segment paths of one bundle directory."""
    directory = Path(directory)
    return {name: directory / filename for name, filename in _FILES.items()}


class SegmentCrtShService(CrtShService):
    """A crt.sh service answering from a mapped CT segment.

    The raw logs (needed only by :meth:`fingerprint_payload` and
    publication-delay derivation) stay pickled in the aux segment and
    load lazily; every search goes straight to the segment table.
    Pickles as its directory, so workers reattach to the mapping.
    """

    def __init__(self, directory: str | Path) -> None:
        directory = Path(directory)
        paths = segment_paths(directory)
        aux = Segment.open(paths["aux"])
        envelope = aux.pickle("ct_service")
        super().__init__(
            logs=None,
            revocations=envelope["revocations"],
            asof=envelope["asof"],
            publication_delay_days=envelope["delay_days"],
            publication_horizon=envelope["horizon"],
        )
        self.__dict__["_logs_real"] = None  # arm the lazy log load
        self._aux = aux
        self._directory = str(directory)
        self._table = open_ct_table(paths["ct"])
        self.hidden_entries = self._table.hidden_entries

    # ``_logs`` is a plain attribute on the base class; here it is a
    # data descriptor, so the base ``__init__`` assignment routes into
    # the setter and the pickled logs stay on disk until first touched.
    @property
    def _logs(self):
        logs = self.__dict__.get("_logs_real")
        if logs is None:
            logs = self._aux.pickle("ct_logs")
            self.__dict__["_logs_real"] = logs
            if self._table is not None and self._table_count < 0:
                # Sync the rebuild check so the base class keeps the
                # segment table now that the log count is knowable.
                self._table_count = sum(len(log.entries()) for log in logs)
        return logs

    @_logs.setter
    def _logs(self, value) -> None:
        self.__dict__["_logs_real"] = list(value) if value is not None else None

    def _ensure_table(self):
        if self.__dict__.get("_logs_real") is None and self._table is not None:
            return self._table
        return super()._ensure_table()

    def __reduce__(self):
        return (SegmentCrtShService, (self._directory,))


def write_segments(inputs: PipelineInputs, directory: str | Path) -> dict[str, Path]:
    """Write one input bundle as a segment directory; returns the paths."""
    paths = segment_paths(directory)
    scan = inputs.scan
    write_scan_table(
        scan.table,
        paths["scan"],
        scan_dates=scan.scan_dates,
        known_missing=scan.known_missing_dates,
    )
    write_pdns_table(inputs.pdns.table, paths["pdns"])
    crtsh = inputs.crtsh
    write_ct_table(crtsh.table, paths["ct"])
    aux = SegmentWriter("aux")
    aux.add_pickle(
        "context",
        {
            "as2org": inputs.as2org,
            "periods": tuple(inputs.periods),
            "routing": inputs.routing,
            "geo": inputs.geo,
        },
    )
    aux.add_pickle(
        "ct_service",
        {
            "revocations": crtsh._revocations,
            "asof": crtsh._asof,
            "delay_days": crtsh._publication_delay.days,
            "horizon": crtsh._publication_horizon,
        },
    )
    aux.add_pickle("ct_logs", list(crtsh._logs))
    aux.write(paths["aux"])
    return paths


def load_segment_inputs(directory: str | Path) -> PipelineInputs:
    """Reopen a segment directory as a pipeline input bundle."""
    from repro.core.pipeline import PipelineInputs

    directory = Path(directory)
    paths = segment_paths(directory)
    for name, path in paths.items():
        if not path.is_file():
            raise SegmentError(f"{directory}: missing {name} segment ({path.name})")
    scan_table = open_scan_table(paths["scan"])
    meta = scan_table.segment.meta
    scan = ScanDataset.from_table(
        scan_table,
        tuple(date.fromordinal(o) for o in meta.get("scan_dates", ())),
        known_missing_dates=frozenset(
            date.fromordinal(o) for o in meta.get("known_missing", ())
        ),
    )
    pdns = PassiveDNSDatabase.from_table(open_pdns_table(paths["pdns"]))
    crtsh = SegmentCrtShService(directory)
    context = crtsh._aux.pickle("context")
    return PipelineInputs(
        scan=scan,
        pdns=pdns,
        crtsh=crtsh,
        as2org=context["as2org"],
        periods=tuple(context["periods"]),
        routing=context["routing"],
        geo=context["geo"],
    )


def inputs_bytes_mapped(inputs: Any) -> int:
    """Total mapped segment bytes behind a bundle (0 if in-RAM)."""
    total = 0
    seen: set[int] = set()
    candidates = (
        getattr(getattr(inputs, "scan", None), "table", None),
        getattr(getattr(inputs, "pdns", None), "_table", None),
        getattr(getattr(inputs, "crtsh", None), "_table", None),
        getattr(getattr(inputs, "crtsh", None), "_aux", None),
    )
    for holder in candidates:
        segment = holder if isinstance(holder, Segment) else getattr(holder, "segment", None)
        if isinstance(segment, Segment) and id(segment) not in seen:
            seen.add(id(segment))
            total += segment.bytes_mapped
    return total


__all__ = [
    "SegmentCrtShService",
    "inputs_bytes_mapped",
    "load_segment_inputs",
    "segment_paths",
    "write_segments",
]
