"""Segment writers and mmap-backed openers for the three evidence tables.

Each writer lays an indexed table's typed-array columns and prebuilt CSR
indexes into one ``repro-segment/1`` file; each opener returns a table
*subclass* whose columns are zero-copy views over the mapping.  The
openers change storage, never semantics: interned ids, CSR slices, and
every query kernel match the in-RAM build byte for byte (the
differential property suite pins this).

Pool strategy differs per table by population size:

* **scan** — the million-domain table.  String and tuple pools stay on
  disk behind lazy views (:mod:`repro.segments.pools`), and the
  ``{domain: position}`` index becomes a bisect over the sorted domain
  pool, so a worker's resident set is O(touched values), not O(table).
* **pdns / ct** — orders of magnitude smaller (shortlist-scale).  Their
  pools travel as one pickle blob and materialize eagerly, keeping the
  service layers (:class:`~repro.pdns.database.PassiveDNSDatabase`,
  :class:`~repro.ct.crtsh.CrtShService`) oblivious to the backing.

Segment-backed tables pickle as their path alone (``__reduce__`` to the
opener), so handing one to a process pool ships tens of bytes and the
worker reattaches to the mapping instead of receiving a copy.
"""

from __future__ import annotations

from datetime import date
from pathlib import Path
from typing import Iterable

from repro.ct.table import CtTable
from repro.pdns.table import PdnsTable
from repro.scan.table import ScanTable
from repro.segments.format import Segment, SegmentError, SegmentWriter
from repro.segments.pools import (
    SortedPoolIndex,
    read_str_pool,
    read_tuple_int_pool,
    read_tuple_str_pool,
    write_str_pool,
    write_tuple_int_pool,
    write_tuple_str_pool,
)

#: Scan columns stored as raw arrays, name -> in-table attribute (1:1).
_SCAN_ARRAYS = (
    "date_ord",
    "ip_id",
    "asn_id",
    "cert_id",
    "country_id",
    "ports_id",
    "names_id",
    "bases_id",
    "flags",
    "ip_ints",
    "asns",
    "csr_rows",
    "csr_dates",
    "csr_off",
    "dom_dates",
    "dom_dates_off",
)

_PDNS_ARRAYS = (
    "rrname_id",
    "rtype_code",
    "rdata_id",
    "first_ord",
    "last_ord",
    "count",
    "name_rows",
    "name_off",
    "dom_rows",
    "dom_off",
)

_CT_ARRAYS = (
    "crtsh_id",
    "cert_id",
    "issuer_id",
    "sans_id",
    "nb_ord",
    "na_ord",
    "logged_ord",
    "base_rows",
    "base_sorted",
    "base_nb",
    "base_off",
)


def _as_array(table, name):
    from array import array

    value = getattr(table, name)
    if isinstance(value, array):
        return value
    if isinstance(value, memoryview):
        # Re-segmenting a segment-backed table: columns are typed views.
        return array(value.format, value)
    # asns is a plain list of ints on the in-RAM table.
    return array("q", value)


def _expect_table(segment: Segment, table: str) -> None:
    if segment.table != table:
        raise SegmentError(
            f"{segment.path}: expected a {table!r} segment, found {segment.table!r}"
        )


# -- scan ----------------------------------------------------------------------


def write_scan_table(
    table: ScanTable,
    path: str | Path,
    *,
    scan_dates: Iterable[date] = (),
    known_missing: Iterable[date] = (),
) -> Path:
    """Write one indexed :class:`ScanTable` (plus its dataset calendar).

    The header also carries the table's per-block row digests (see
    :func:`repro.cache.fingerprint.scan_block_digests`): the write is
    already an O(rows) walk, and persisting the digests makes the first
    cache probe over the opened bundle O(1) instead of a full re-walk.
    """
    from repro.cache.fingerprint import SCAN_BLOCK_ROWS, scan_block_digests

    writer = SegmentWriter(
        "scan",
        meta={
            "n_rows": len(table),
            "scan_dates": sorted(d.toordinal() for d in scan_dates),
            "known_missing": sorted(d.toordinal() for d in known_missing),
            "block_rows": SCAN_BLOCK_ROWS,
            "block_digests": list(scan_block_digests(table)),
        },
    )
    for name in _SCAN_ARRAYS:
        writer.add_array(name, _as_array(table, name))
    write_str_pool(writer, "ips", table.ips)
    write_str_pool(writer, "cert_fps", table.cert_fps)
    write_str_pool(writer, "countries", table.countries)
    write_str_pool(writer, "domains", table.domains)
    write_tuple_int_pool(writer, "port_sets", table.port_sets)
    write_tuple_str_pool(writer, "name_sets", table.name_sets)
    write_tuple_str_pool(writer, "base_sets", table.base_sets)
    writer.add_pickle("certs", list(table.certs))
    return writer.write(path)


class SegmentScanTable(ScanTable):
    """A :class:`ScanTable` whose columns live in one mapped segment.

    Pools are lazy views; the domain index is a bisect over the sorted
    on-disk domain pool.  Pickles as its path (workers reopen the map).
    """

    def __init__(self, segment: Segment) -> None:
        super().__init__()
        _expect_table(segment, "scan")
        self.segment = segment
        for name in _SCAN_ARRAYS:
            setattr(self, name, segment.array(name))
        self.ips = read_str_pool(segment, "ips")
        self.cert_fps = read_str_pool(segment, "cert_fps")
        self.countries = read_str_pool(segment, "countries")
        self.domains = read_str_pool(segment, "domains")
        self.port_sets = read_tuple_int_pool(segment, "port_sets")
        self.name_sets = read_tuple_str_pool(segment, "name_sets")
        self.base_sets = read_tuple_str_pool(segment, "base_sets")
        self.certs = segment.pickle("certs")
        self._dom_index = SortedPoolIndex(self.domains)
        self._rec_cache = [None] * len(self.date_ord)
        digests = segment.meta.get("block_digests")
        if digests:
            from repro.cache.fingerprint import SCAN_BLOCK_ROWS

            if int(segment.meta.get("block_rows", 0)) == SCAN_BLOCK_ROWS:
                # Seed the digest memo from the header: the first cache
                # probe over this bundle then costs no row walk at all.
                self._repro_block_digests = (SCAN_BLOCK_ROWS, tuple(digests))

    def __reduce__(self):
        return (open_scan_table, (str(self.segment.path),))


def open_scan_table(path: str | Path) -> SegmentScanTable:
    return SegmentScanTable(Segment.open(path))


# -- pdns ----------------------------------------------------------------------


def write_pdns_table(table: PdnsTable, path: str | Path) -> Path:
    writer = SegmentWriter("pdns", meta={"n_rows": len(table)})
    for name in _PDNS_ARRAYS:
        writer.add_array(name, _as_array(table, name))
    writer.add_pickle(
        "pools",
        {
            "rrnames": list(table.rrnames),
            "rdatas": list(table.rdatas),
            "names": table.names,
            "domains": table.domains,
            "irregular_rows": table.irregular_rows,
        },
    )
    return writer.write(path)


class SegmentPdnsTable(PdnsTable):
    """A :class:`PdnsTable` whose columns live in one mapped segment."""

    def __init__(self, segment: Segment) -> None:
        super().__init__()
        _expect_table(segment, "pdns")
        self.segment = segment
        for name in _PDNS_ARRAYS:
            setattr(self, name, segment.array(name))
        pools = segment.pickle("pools")
        self.rrnames = pools["rrnames"]
        self.rdatas = pools["rdatas"]
        self.names = tuple(pools["names"])
        self.domains = tuple(pools["domains"])
        self.irregular_rows = tuple(pools["irregular_rows"])
        self._name_index = {name: i for i, name in enumerate(self.names)}
        self._dom_index = {base: i for i, base in enumerate(self.domains)}
        self._rec_cache = [None] * len(self.first_ord)

    def __reduce__(self):
        return (open_pdns_table, (str(self.segment.path),))


def open_pdns_table(path: str | Path) -> SegmentPdnsTable:
    return SegmentPdnsTable(Segment.open(path))


# -- ct ------------------------------------------------------------------------


def write_ct_table(table: CtTable, path: str | Path) -> Path:
    writer = SegmentWriter(
        "ct", meta={"n_rows": len(table), "hidden_entries": table.hidden_entries}
    )
    for name in _CT_ARRAYS:
        writer.add_array(name, _as_array(table, name))
    writer.add_pickle(
        "pools",
        {
            "fps": list(table.fps),
            "certs": list(table.certs),
            "issuers": list(table.issuers),
            "san_sets": list(table.san_sets),
            "bases": table.bases,
        },
    )
    return writer.write(path)


class SegmentCtTable(CtTable):
    """A :class:`CtTable` whose columns live in one mapped segment."""

    def __init__(self, segment: Segment) -> None:
        super().__init__()
        _expect_table(segment, "ct")
        self.segment = segment
        for name in _CT_ARRAYS:
            setattr(self, name, segment.array(name))
        pools = segment.pickle("pools")
        self.fps = pools["fps"]
        self.certs = pools["certs"]
        self.issuers = pools["issuers"]
        self.san_sets = pools["san_sets"]
        self.bases = tuple(pools["bases"])
        self.hidden_entries = int(segment.meta.get("hidden_entries", 0))
        self._base_index = {base: i for i, base in enumerate(self.bases)}

    def __reduce__(self):
        return (open_ct_table, (str(self.segment.path),))


def open_ct_table(path: str | Path) -> SegmentCtTable:
    return SegmentCtTable(Segment.open(path))


__all__ = [
    "SegmentCtTable",
    "SegmentPdnsTable",
    "SegmentScanTable",
    "open_ct_table",
    "open_pdns_table",
    "open_scan_table",
    "write_ct_table",
    "write_pdns_table",
    "write_scan_table",
]
