"""Lazy interned-pool views over segment blobs.

In-RAM tables keep their pools as Python lists; a million-domain segment
cannot afford to materialize a million strings (or tuples of strings) in
every process that maps it.  These sequence views decode one item per
``__getitem__`` straight off the mapping and deliberately do *not*
memoize — a decoded value is transient, so iterating the whole pool
costs allocations but never resident set.

Pool ids are first-seen-order positions, identical to the in-RAM build,
so a segment-backed table and its in-RAM twin agree on every interned
id (the differential property suite pins this).
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence
from typing import Any

from repro.segments.format import Segment, SegmentWriter


class StrPool(Sequence):
    """Lazy ``list[str]``: UTF-8 blob + (n+1) offsets."""

    __slots__ = ("_offsets", "_blob")

    def __init__(self, offsets, blob) -> None:
        self._offsets = offsets
        self._blob = blob

    def __len__(self) -> int:
        return len(self._offsets) - 1 if len(self._offsets) else 0

    def __getitem__(self, index: int) -> str:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        lo, hi = self._offsets[index], self._offsets[index + 1]
        return str(self._blob[lo:hi], "utf-8")

    def __iter__(self):
        blob = self._blob
        offsets = self._offsets
        for i in range(len(self)):
            yield str(blob[offsets[i] : offsets[i + 1]], "utf-8")


class TupleStrPool(Sequence):
    """Lazy ``list[tuple[str, ...]]`` over a flattened :class:`StrPool`."""

    __slots__ = ("_bounds", "_values")

    def __init__(self, bounds, values: StrPool) -> None:
        self._bounds = bounds
        self._values = values

    def __len__(self) -> int:
        return len(self._bounds) - 1 if len(self._bounds) else 0

    def __getitem__(self, index: int):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        lo, hi = self._bounds[index], self._bounds[index + 1]
        values = self._values
        return tuple(values[i] for i in range(lo, hi))


class TupleIntPool(Sequence):
    """Lazy ``list[tuple[int, ...]]`` over a flattened int column."""

    __slots__ = ("_bounds", "_values")

    def __init__(self, bounds, values) -> None:
        self._bounds = bounds
        self._values = values

    def __len__(self) -> int:
        return len(self._bounds) - 1 if len(self._bounds) else 0

    def __getitem__(self, index: int):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        lo, hi = self._bounds[index], self._bounds[index + 1]
        return tuple(self._values[lo:hi])


class SortedPoolIndex:
    """``dict.get``-compatible lookup over a *sorted* lazy pool.

    Segment-backed tables replace their ``{value: position}`` index dict
    with a bisect over the (already sorted) pool: O(log n) transient
    decodes per lookup instead of an n-entry resident dict per process.
    """

    __slots__ = ("_pool",)

    def __init__(self, pool) -> None:
        self._pool = pool

    def get(self, key, default=None):
        pool = self._pool
        lo, hi = 0, len(pool)
        while lo < hi:
            mid = (lo + hi) // 2
            if pool[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(pool) and pool[lo] == key:
            return lo
        return default

    def __getitem__(self, key):
        position = self.get(key)
        if position is None:
            raise KeyError(key)
        return position

    def __contains__(self, key) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return len(self._pool)


# -- writer/reader helpers (pool layout convention over format blobs) ----------


def _offsets(lengths) -> array:
    out = array("Q", [0])
    total = 0
    for length in lengths:
        total += length
        out.append(total)
    return out


def write_str_pool(writer: SegmentWriter, name: str, values) -> None:
    encoded = [value.encode("utf-8") for value in values]
    writer.add_array(f"{name}.off", _offsets(len(e) for e in encoded))
    writer.add_bytes(f"{name}.dat", b"".join(encoded))


def read_str_pool(segment: Segment, name: str) -> StrPool:
    return StrPool(segment.array(f"{name}.off"), segment.blob(f"{name}.dat"))


def write_tuple_str_pool(writer: SegmentWriter, name: str, items) -> None:
    items = list(items)
    writer.add_array(f"{name}.idx", _offsets(len(item) for item in items))
    flat = [value for item in items for value in item]
    write_str_pool(writer, f"{name}.val", flat)


def read_tuple_str_pool(segment: Segment, name: str) -> TupleStrPool:
    return TupleStrPool(
        segment.array(f"{name}.idx"), read_str_pool(segment, f"{name}.val")
    )


def write_tuple_int_pool(writer: SegmentWriter, name: str, items) -> None:
    items = list(items)
    writer.add_array(f"{name}.idx", _offsets(len(item) for item in items))
    writer.add_array(
        f"{name}.val", array("q", [value for item in items for value in item])
    )


def read_tuple_int_pool(segment: Segment, name: str) -> TupleIntPool:
    return TupleIntPool(segment.array(f"{name}.idx"), segment.array(f"{name}.val"))


__all__: list[Any] = [
    "SortedPoolIndex",
    "StrPool",
    "TupleIntPool",
    "TupleStrPool",
    "read_str_pool",
    "read_tuple_int_pool",
    "read_tuple_str_pool",
    "write_str_pool",
    "write_tuple_int_pool",
    "write_tuple_str_pool",
]
