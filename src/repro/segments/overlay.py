"""Overlay extension of an indexed scan table with appended rows.

An epoch delta appends new scan observations to an existing (possibly
mmap-backed) table.  Rebuilding the table from the concatenated row
stream would intern every pool value and re-sort every domain's rows
again — O(dataset) work for an O(delta) change.  The overlay exploits
two invariants of the columnar design instead:

* **Interning is append-stable.**  Pool ids are assigned in
  first-appearance order over the row stream, so appending rows *after*
  the base rows preserves every base id verbatim; only genuinely new
  values get new (higher) ids.  The overlay pre-seeds a
  :class:`~repro.scan.table._TableBuilder` with the base pools and lets
  it intern the appended rows normally.
* **The CSR index is domain-local.**  A domain's CSR slice depends only
  on that domain's own rows, and row indices never shift (the delta
  lands strictly after the base), so every *clean* domain's slice is
  copied from the base index with a constant offset shift; only domains
  the delta actually touches are re-merged and re-sorted.

The result is a plain in-RAM :class:`ScanTable` that is **identical**
— pools, ids, columns, CSR arrays, pickled wire form, block digests —
to a table rebuilt from the concatenated rows.  The differential
property suite (``tests/test_properties_epochs.py``) pins exactly that
equivalence, which is what makes the epoch engine's reuse of base
products sound rather than heuristic.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Sequence

from repro.scan.table import ScanTable, _TableBuilder

#: ``(pool attribute, interner attribute)`` pairs whose seeded keys are
#: the pool values themselves (certificates are keyed by fingerprint
#: and handled separately).
_SEEDED_POOLS = (
    ("ips", "_ips"),
    ("asns", "_asns"),
    ("countries", "_countries"),
    ("port_sets", "_ports"),
    ("name_sets", "_names"),
    ("base_sets", "_bases"),
)


def _copy_array(value) -> array:
    """A mutable ``array`` copy of a column (array or mmap memoryview)."""
    if isinstance(value, array):
        return array(value.typecode, value)
    out = array(value.format)
    out.frombytes(value.cast("B"))
    return out


def _seed(interner, values: list) -> None:
    """Point an interner at an existing pool so new values append to it."""
    interner.values = values
    interner._ids = {value: ident for ident, value in enumerate(values)}


def extend_scan_table(base: ScanTable, rows: Iterable[Sequence]) -> ScanTable:
    """The table for ``base``'s rows followed by ``rows``, via overlay.

    ``rows`` are :meth:`_TableBuilder.append_row` argument tuples —
    ``(date_ordinal, ip, asn, certificate, country, ports, names,
    base_domains, trusted, sensitive)`` — exactly what an epoch delta
    carries.  The base (in-RAM or segment-backed) is not modified.
    """
    derived = ScanTable()
    # Row columns copy verbatim: the delta appends, never rewrites.
    derived.date_ord = _copy_array(base.date_ord)
    derived.ip_id = _copy_array(base.ip_id)
    derived.asn_id = _copy_array(base.asn_id)
    derived.cert_id = _copy_array(base.cert_id)
    derived.country_id = _copy_array(base.country_id)
    derived.ports_id = _copy_array(base.ports_id)
    derived.names_id = _copy_array(base.names_id)
    derived.bases_id = _copy_array(base.bases_id)
    derived.flags = _copy_array(base.flags)
    # Pools materialize as mutable lists (a segment base's lazy views
    # decode here, once); the builder's interners then share these very
    # lists, so appending a delta row extends them in place.
    derived.ips = list(base.ips)
    derived.ip_ints = _copy_array(base.ip_ints)
    derived.asns = list(base.asns)
    derived.cert_fps = list(base.cert_fps)
    derived.certs = list(base.certs)
    derived.countries = list(base.countries)
    derived.port_sets = list(base.port_sets)
    derived.name_sets = list(base.name_sets)
    derived.base_sets = list(base.base_sets)

    builder = _TableBuilder(derived)
    for pool_name, interner_name in _SEEDED_POOLS:
        _seed(getattr(builder, interner_name), getattr(derived, pool_name))
    _seed(builder._certs, derived.cert_fps)

    n_base = len(base.date_ord)
    for row in rows:
        builder.append_row(*row)

    # Adopt pools exactly like ``finish()`` — they are already the
    # table's own lists — but splice the CSR index instead of rebuilding.
    derived.ips = builder._ips.values
    derived.asns = builder._asns.values
    derived.cert_fps = builder._certs.values
    derived.countries = builder._countries.values
    derived.port_sets = builder._ports.values
    derived.name_sets = builder._names.values
    derived.base_sets = builder._bases.values

    base_cache = getattr(base, "_rec_cache", None) or []
    derived._rec_cache = list(base_cache) + [None] * (len(derived.date_ord) - len(base_cache))

    _splice_index(derived, base, n_base)
    _seed_block_digests(derived, base, n_base)
    return derived


def _splice_index(derived: ScanTable, base: ScanTable, n_base: int) -> None:
    """Build the CSR index by copying clean base slices and re-merging
    only the domains the appended rows touch.

    Equivalence with ``_build_index`` over the full row stream: a
    domain's rows sort by ``(date, ip string)`` with ties broken by row
    index (the sort is stable over index-ordered buckets).  A clean
    domain's base slice already *is* that order — indices unshifted —
    and a dirty domain's merge list (base slice, then new rows in index
    order) stably re-sorts to it.  Comparing ip *strings* equals
    comparing the rebuild's precomputed string ranks.
    """
    date_ord = derived.date_ord
    ip_id_col = derived.ip_id
    ips = derived.ips

    new_buckets: dict[str, list[int]] = {}
    bases_id = derived.bases_id
    base_sets = derived.base_sets
    for row in range(n_base, len(date_ord)):
        for name in base_sets[bases_id[row]]:
            bucket = new_buckets.get(name)
            if bucket is None:
                new_buckets[name] = [row]
            else:
                bucket.append(row)

    base_domains = base.domains
    new_only = sorted(
        name for name in new_buckets if base.domain_index(name) is None
    )
    base_off = base.csr_off
    base_dd_off = base.dom_dates_off
    base_csr_rows = base.csr_rows
    base_csr_dates = base.csr_dates
    base_dom_dates = base.dom_dates

    domains: list[str] = []
    csr_rows = array("I")
    csr_dates = array("i")
    csr_off = array("I", [0])
    dom_dates = array("i")
    dom_dates_off = array("I", [0])

    def emit_merged(name: str, merged: list[int]) -> None:
        merged.sort(key=lambda r: (date_ord[r], ips[ip_id_col[r]]))
        csr_rows.extend(merged)
        previous = None
        for row in merged:
            ordinal = date_ord[row]
            csr_dates.append(ordinal)
            if ordinal != previous:
                dom_dates.append(ordinal)
                previous = ordinal
        csr_off.append(len(csr_rows))
        dom_dates_off.append(len(dom_dates))
        domains.append(name)

    def copy_clean(lo: int, hi: int) -> None:
        # A run of base domains [lo, hi) none of which the delta touches:
        # their concatenated CSR slices copy as raw bytes, offsets shift
        # by a constant.
        row_shift = len(csr_rows) - base_off[lo]
        date_shift = len(dom_dates) - base_dd_off[lo]
        csr_rows.frombytes(bytes_of(base_csr_rows, base_off[lo], base_off[hi]))
        csr_dates.frombytes(bytes_of(base_csr_dates, base_off[lo], base_off[hi]))
        dom_dates.frombytes(
            bytes_of(base_dom_dates, base_dd_off[lo], base_dd_off[hi])
        )
        for i in range(lo, hi):
            csr_off.append(base_off[i + 1] + row_shift)
            dom_dates_off.append(base_dd_off[i + 1] + date_shift)
            domains.append(base_domains[i])

    def bytes_of(column, lo: int, hi: int) -> bytes:
        view = column[lo:hi]
        return view.tobytes()

    n_base_domains = len(base_domains)
    next_new = 0
    i = 0
    while i < n_base_domains:
        name = base_domains[i]
        # New-only domains sorting before this base domain slot in first.
        while next_new < len(new_only) and new_only[next_new] < name:
            emit_merged(new_only[next_new], list(new_buckets[new_only[next_new]]))
            next_new += 1
        touched = new_buckets.get(name)
        if touched is None:
            # Extend the clean run as far as it goes before copying.
            j = i + 1
            stop = (
                new_only[next_new] if next_new < len(new_only) else None
            )
            while j < n_base_domains:
                candidate = base_domains[j]
                if stop is not None and candidate > stop:
                    break
                if candidate in new_buckets:
                    break
                j += 1
            copy_clean(i, j)
            i = j
        else:
            merged = list(
                base_csr_rows[base_off[i]:base_off[i + 1]]
            )
            merged.extend(touched)
            emit_merged(name, merged)
            i += 1
    while next_new < len(new_only):
        emit_merged(new_only[next_new], list(new_buckets[new_only[next_new]]))
        next_new += 1

    from repro.segments.pools import SortedPoolIndex

    derived.domains = tuple(domains)
    # The merge emits domains in sorted order, so the bisect index the
    # segment tables use works here too — and skips materializing a
    # population-sized dict for an O(delta) operation.  The pickled wire
    # form is unaffected (``__getstate__`` drops the index either way).
    derived._dom_index = SortedPoolIndex(derived.domains)
    derived.csr_rows = csr_rows
    derived.csr_dates = csr_dates
    derived.csr_off = csr_off
    derived.dom_dates = dom_dates
    derived.dom_dates_off = dom_dates_off


def _seed_block_digests(derived: ScanTable, base: ScanTable, n_base: int) -> None:
    """Extend the base's content-digest blocks with only the new rows.

    This is the cache-side half of the overlay: the merged dataset's
    fingerprint becomes an O(delta) computation (every full base block's
    digest is reused), so epoch runs pay for what changed, not for what
    they carried over.
    """
    from repro.cache.fingerprint import (
        SCAN_BLOCK_ROWS,
        extended_block_digests,
        scan_block_digests,
    )

    base_digests = scan_block_digests(base)
    derived._repro_block_digests = (
        SCAN_BLOCK_ROWS,
        extended_block_digests(derived, base_digests, n_base),
    )


__all__ = ["extend_scan_table"]
