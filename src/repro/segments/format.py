"""The ``repro-segment/1`` container: checksummed, mmap-reopenable blobs.

One segment file holds named binary blobs — typed-array columns, flat
pool payloads, small pickles — behind a JSON header::

    b"repro-segment/1\\n"          magic
    8-byte big-endian length       of the JSON header
    header JSON                    {"table", "blobs": [...], "meta": {...}}
    payload                        blob bytes, 8-byte aligned
    16-byte blake2b digest         over every preceding byte

The trailing checksum makes truncation and bit flips a *typed* failure
(:class:`SegmentChecksumError`), never garbage rows: :func:`Segment.open`
verifies the whole file with bounded streamed reads before mapping it —
streaming rather than hashing through the map keeps verification from
faulting every page into the opener's resident set.  Writes land via
the same tempfile + ``os.replace`` pattern as the stage cache, so a
crashed writer leaves no half-segment behind.
"""

from __future__ import annotations

import json
import mmap
import os
import pickle
import tempfile
from array import array
from hashlib import blake2b
from pathlib import Path
from typing import Any, Iterator

MAGIC = b"repro-segment/1\n"

_CHECKSUM_BYTES = 16
_LENGTH_BYTES = 8
_ALIGN = 8
_VERIFY_CHUNK = 1 << 20

#: array/memoryview typecodes a segment may carry (native struct codes).
_TYPECODES = {"b": 1, "B": 1, "h": 2, "H": 2, "i": 4, "I": 4, "q": 8, "Q": 8}


class SegmentError(Exception):
    """A segment file is structurally unusable (bad magic, header, spec)."""


class SegmentChecksumError(SegmentError):
    """A segment file failed checksum verification (truncated or flipped)."""


def _pad(length: int) -> int:
    return (-length) % _ALIGN


class SegmentWriter:
    """Accumulates named blobs, then writes one segment file atomically."""

    def __init__(self, table: str, meta: dict[str, Any] | None = None) -> None:
        self.table = table
        self.meta = dict(meta or {})
        self._blobs: list[tuple[str, str, str, bytes]] = []
        self._names: set[str] = set()

    def _add(self, name: str, kind: str, typecode: str, data: bytes) -> None:
        if name in self._names:
            raise SegmentError(f"duplicate blob name {name!r}")
        self._names.add(name)
        self._blobs.append((name, kind, typecode, data))

    def add_array(self, name: str, values: array) -> None:
        if values.typecode not in _TYPECODES:
            raise SegmentError(f"unsupported array typecode {values.typecode!r}")
        self._add(name, "array", values.typecode, values.tobytes())

    def add_bytes(self, name: str, data: bytes) -> None:
        self._add(name, "bytes", "B", bytes(data))

    def add_pickle(self, name: str, obj: Any) -> None:
        self._add(name, "pickle", "B", pickle.dumps(obj, protocol=5))

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        specs = []
        offset = 0
        for name, kind, typecode, data in self._blobs:
            specs.append(
                {
                    "name": name,
                    "kind": kind,
                    "typecode": typecode,
                    "offset": offset,
                    "length": len(data),
                }
            )
            offset += len(data) + _pad(len(data))
        header = json.dumps(
            {"table": self.table, "blobs": specs, "meta": self.meta},
            sort_keys=True,
        ).encode("utf-8")
        path.parent.mkdir(parents=True, exist_ok=True)
        digest = blake2b(digest_size=_CHECKSUM_BYTES)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".segtmp")
        try:
            with os.fdopen(fd, "wb") as handle:

                def emit(chunk: bytes) -> None:
                    digest.update(chunk)
                    handle.write(chunk)

                emit(MAGIC)
                emit(len(header).to_bytes(_LENGTH_BYTES, "big"))
                emit(header)
                # Align the payload start (the reader assumes it).
                emit(b"\0" * _pad(len(MAGIC) + _LENGTH_BYTES + len(header)))
                for _, _, _, data in self._blobs:
                    emit(data)
                    emit(b"\0" * _pad(len(data)))
                handle.write(digest.digest())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path


def _verify_stream(path: Path) -> None:
    """Checksum the file with bounded reads; raise on any mismatch."""
    digest = blake2b(digest_size=_CHECKSUM_BYTES)
    try:
        size = path.stat().st_size
        with path.open("rb") as handle:
            if size < len(MAGIC) + _LENGTH_BYTES + _CHECKSUM_BYTES:
                raise SegmentChecksumError(f"{path}: truncated segment ({size} bytes)")
            remaining = size - _CHECKSUM_BYTES
            while remaining:
                chunk = handle.read(min(_VERIFY_CHUNK, remaining))
                if not chunk:
                    raise SegmentChecksumError(f"{path}: short read during verify")
                digest.update(chunk)
                remaining -= len(chunk)
            stored = handle.read(_CHECKSUM_BYTES)
    except OSError as error:
        raise SegmentError(f"{path}: unreadable segment: {error}") from error
    if stored != digest.digest():
        raise SegmentChecksumError(f"{path}: segment checksum mismatch")


def _parse_header(view: memoryview, path: Path) -> tuple[dict[str, Any], int]:
    if bytes(view[: len(MAGIC)]) != MAGIC:
        raise SegmentError(f"{path}: not a repro segment (bad magic)")
    length_at = len(MAGIC)
    data_at = length_at + _LENGTH_BYTES
    header_len = int.from_bytes(bytes(view[length_at:data_at]), "big")
    header_end = data_at + header_len
    if header_end + _CHECKSUM_BYTES > len(view):
        raise SegmentError(f"{path}: header overruns the file")
    try:
        header = json.loads(bytes(view[data_at:header_end]))
    except ValueError as error:
        raise SegmentError(f"{path}: undecodable header: {error}") from error
    if not isinstance(header, dict) or "blobs" not in header:
        raise SegmentError(f"{path}: malformed header")
    return header, header_end


class Segment:
    """One verified, memory-mapped segment file."""

    def __init__(self, path: Path, header: dict[str, Any], mapped: mmap.mmap) -> None:
        self.path = path
        self.table: str = header.get("table", "")
        self.meta: dict[str, Any] = header.get("meta", {})
        self._mmap = mapped
        self._view = memoryview(mapped)
        self._specs: dict[str, dict[str, Any]] = {}
        data_start = header["_data_start"]
        for spec in header["blobs"]:
            spec = dict(spec)
            spec["offset"] = data_start + int(spec["offset"])
            self._specs[spec["name"]] = spec

    @classmethod
    def open(cls, path: str | Path) -> "Segment":
        path = Path(path)
        _verify_stream(path)
        with path.open("rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            view = memoryview(mapped)
            header, header_end = _parse_header(view, path)
            view.release()
            header["_data_start"] = header_end + _pad(header_end)
            return cls(path, header, mapped)
        except BaseException:
            mapped.close()
            raise

    # -- blob accessors --------------------------------------------------------

    def _spec(self, name: str) -> dict[str, Any]:
        spec = self._specs.get(name)
        if spec is None:
            raise SegmentError(f"{self.path}: no blob named {name!r}")
        return spec

    def blob(self, name: str) -> memoryview:
        spec = self._spec(name)
        lo = spec["offset"]
        hi = lo + spec["length"]
        if hi > len(self._view):
            raise SegmentError(f"{self.path}: blob {name!r} overruns the file")
        return self._view[lo:hi]

    def array(self, name: str):
        """The named column as a zero-copy typed view over the mapping."""
        spec = self._spec(name)
        typecode = spec["typecode"]
        itemsize = _TYPECODES.get(typecode)
        if itemsize is None or spec["length"] % itemsize:
            raise SegmentError(
                f"{self.path}: blob {name!r} is not a {typecode!r} array"
            )
        if spec["length"] == 0:
            return array(typecode)
        return self.blob(name).cast(typecode)

    def pickle(self, name: str) -> Any:
        return pickle.loads(self.blob(name))

    def names(self) -> Iterator[str]:
        return iter(self._specs)

    def spec(self, name: str) -> dict[str, Any]:
        return dict(self._spec(name))

    @property
    def bytes_mapped(self) -> int:
        return len(self._view)

    def close(self) -> None:
        self._view.release()
        self._mmap.close()


def verify_segment(path: str | Path) -> dict[str, Any]:
    """Verify one segment end to end; returns its header summary.

    Raises :class:`SegmentChecksumError` on corruption and
    :class:`SegmentError` on structural problems — never returns rows
    from a bad file.
    """
    path = Path(path)
    _verify_stream(path)
    blob = path.read_bytes()
    header, _ = _parse_header(memoryview(blob), path)
    return {
        "path": str(path),
        "table": header.get("table", ""),
        "bytes": len(blob),
        "blobs": [
            {k: spec[k] for k in ("name", "kind", "typecode", "length")}
            for spec in header["blobs"]
        ],
        "meta": header.get("meta", {}),
    }


__all__ = [
    "MAGIC",
    "Segment",
    "SegmentChecksumError",
    "SegmentError",
    "SegmentWriter",
    "verify_segment",
]
