"""IP-intelligence substrates.

Stand-ins for the research-access data sets the paper annotates scan
records with: CAIDA Routeviews prefix-to-AS mappings (`RoutingTable`),
the CAIDA AS-to-Organization inference (`AS2Org`), NetAcuity geolocation
(`GeoDB`), and a directory of AS names (`AS_NAMES`).  In this
reproduction the tables are populated by the world builder from the same
hosting-provider inventory that allocates simulated IP addresses, so the
annotations are consistent with the scan data by construction.
"""

from repro.ipintel.as2org import AS2Org
from repro.ipintel.asnames import AS_NAMES, as_name
from repro.ipintel.geo import GeoDB
from repro.ipintel.pfx2as import RoutingTable

__all__ = ["AS2Org", "AS_NAMES", "as_name", "GeoDB", "RoutingTable"]
