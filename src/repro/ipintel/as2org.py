"""AS-to-Organization mapping.

Equivalent of the CAIDA AS2Org inference: groups ASNs operated by the
same organization (e.g. AS16509 and AS14618 are both Amazon).  The
shortlisting stage uses this to discard transient deployments whose ASN
is organizationally related to the domain's stable deployment — the
paper's first pruning heuristic (Section 4.3).
"""

from __future__ import annotations


class AS2Org:
    """Mapping from ASN to an opaque organization identifier."""

    def __init__(self) -> None:
        self._org_of: dict[int, str] = {}
        self._org_names: dict[str, str] = {}

    def assign(self, asn: int, org_id: str, org_name: str | None = None) -> None:
        """Record that ``asn`` is operated by organization ``org_id``."""
        if asn <= 0:
            raise ValueError(f"ASN must be positive: {asn}")
        if not org_id:
            raise ValueError("org_id must be non-empty")
        self._org_of[asn] = org_id
        if org_name:
            self._org_names[org_id] = org_name

    def org_of(self, asn: int) -> str | None:
        return self._org_of.get(asn)

    def org_name(self, org_id: str) -> str | None:
        return self._org_names.get(org_id)

    def related(self, asn_a: int, asn_b: int) -> bool:
        """True if both ASNs map to the same organization.

        Identical ASNs are trivially related.  ASNs absent from the
        mapping are only related to themselves — an unknown AS cannot be
        assumed to belong to anyone, so the shortlist keeps it suspicious.
        """
        if asn_a == asn_b:
            return True
        org_a, org_b = self._org_of.get(asn_a), self._org_of.get(asn_b)
        return org_a is not None and org_a == org_b

    def siblings(self, asn: int) -> frozenset[int]:
        """All ASNs sharing ``asn``'s organization (including itself)."""
        org = self._org_of.get(asn)
        if org is None:
            return frozenset({asn})
        return frozenset(a for a, o in self._org_of.items() if o == org)

    def items(self) -> list[tuple[int, str]]:
        """All (ASN, org-id) pairs, sorted by ASN."""
        return sorted(self._org_of.items())

    def __len__(self) -> int:
        return len(self._org_of)
