"""Directory of AS names used in the study.

The attacker-network analysis (Table 5 of the paper) reports ASNs by
name; this table covers every ASN appearing in the paper's Tables 2, 3,
and 5 plus a few generic cloud providers used by the synthetic benign
population.  The world builder registers any additional scenario ASNs at
run time via :func:`register_as_name`.
"""

from __future__ import annotations

AS_NAMES: dict[int, str] = {
    # Attacker-side networks (Table 5).
    14061: "Digital Ocean",
    20473: "Vultr",
    45102: "Alibaba",
    50673: "Serverius",
    48282: "VDSINA",
    47220: "ANTENA3",
    9009: "M247",
    24961: "MYLOC",
    63949: "Linode",
    136574: "Zheye Network",
    20860: "IOMart",
    54825: "Packet Host",
    24940: "Hetzner",
    41436: "CloudWebManage",
    64022: "Kamatera",
    # Generic clouds used by the benign background population.
    16509: "Amazon",
    14618: "Amazon AES",
    15169: "Google",
    8075: "Microsoft",
    13335: "Cloudflare",
    16276: "OVH",
    # Victim-side networks appearing in Tables 2 and 3.
    5384: "Emirates Telecom (Etisalat)",
    202024: "UAE Government",
    5576: "Albanian Government",
    201524: "Albanian State Network",
    50233: "Cyprus Government",
    35432: "Cablenet Cyprus",
    37066: "Egypt MFA",
    25576: "Egypt MOD",
    31065: "Egypt State Network",
    24835: "Vodafone Egypt",
    37191: "Egypt Telecom",
    35506: "Greek Government Network",
    6799: "OTE Greece",
    50710: "EarthLink Iraq",
    39659: "Infocom Kyrgyzstan",
    6412: "Kuwait Ministry of Communications",
    21050: "Fast Telecom Kuwait",
    57719: "KOTC Kuwait",
    31126: "Medgulf Lebanon",
    51167: "Contabo",
    37284: "LTT Libya",
    60781: "LeaseWeb NL",
    29256: "Syrian Telecom",
    33387: "DataShack",
    44901: "Belcloud",
    61098: "Swiss Government Network",
    3303: "Swisscom",
    37313: "NITA Ghana",
    8934: "Jordan PSD",
    48716: "Kazakhtelecom DC",
    15549: "Zerde Kazakhstan",
    6769: "Statistics Lithuania Net",
    8194: "Latvia State Network",
    25241: "Latvia Interior Ministry",
    199300: "Latvia Medicines Agency",
    6713: "Maroc Telecom",
    136465: "Myanmar MFA",
    34986: "Poland KNF",
    49474: "Al-Elm Saudi",
    20661: "Turkmentelecom",
    13977: "Manchester NH Net",
    32244: "Batesville AR Net",
    131375: "Vietnam AIS",
    63748: "Vietnam AIS 2",
    24035: "Vietnam MFA",
    63747: "Vietnam Post",
    38731: "Vietnam MOST",
    131373: "Vietnam MOST 2",
    18403: "FPT Vietnam",
}


def register_as_name(asn: int, name: str) -> None:
    """Register a scenario-specific AS name at world-build time."""
    if asn <= 0:
        raise ValueError(f"ASN must be positive: {asn}")
    AS_NAMES[asn] = name


def as_name(asn: int) -> str:
    """Human-readable AS name, falling back to ``AS<number>``."""
    return AS_NAMES.get(asn, f"AS{asn}")
