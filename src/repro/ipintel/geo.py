"""IP geolocation database (NetAcuity stand-in).

Maps prefixes to ISO-3166 alpha-2 country codes.  Shortlisting prunes
transient deployments that geolocate to the same country as any stable
deployment (Section 4.3), so country-level resolution is all we need.
"""

from __future__ import annotations

from repro.net.ipv4 import IPv4Prefix, int_to_ip, ip_to_int

_VALID_CC_LEN = 2


class GeoDB:
    """Longest-prefix-match IP → country-code database."""

    def __init__(self) -> None:
        self._by_length: dict[int, dict[int, str]] = {}
        self._lengths_desc: tuple[int, ...] = ()

    def add(self, prefix: str | IPv4Prefix, country: str) -> None:
        if len(country) != _VALID_CC_LEN or not country.isalpha():
            raise ValueError(f"not an ISO alpha-2 country code: {country!r}")
        parsed = prefix if isinstance(prefix, IPv4Prefix) else IPv4Prefix.parse(prefix)
        self._by_length.setdefault(parsed.length, {})[parsed.network] = country.upper()
        self._lengths_desc = tuple(sorted(self._by_length, reverse=True))

    def items(self) -> list[tuple[str, str]]:
        """Every ``(CIDR text, country)`` mapping, sorted by prefix.

        The database's full content in a canonical order — what exports
        and cache fingerprints iterate.
        """
        rows = [
            (f"{int_to_ip(network)}/{length}", country)
            for length, bucket in self._by_length.items()
            for network, country in bucket.items()
        ]
        rows.sort()
        return rows

    def lookup(self, ip: str | int) -> str | None:
        """Country code of the most-specific prefix covering ``ip``."""
        value = ip if isinstance(ip, int) else ip_to_int(ip)
        for length in self._lengths_desc:
            mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
            country = self._by_length[length].get(value & mask)
            if country is not None:
                return country
        return None
