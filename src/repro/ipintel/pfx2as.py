"""Prefix-to-AS mapping with longest-prefix matching.

Equivalent of the CAIDA Routeviews pfx2as data set: given an IP address
observed in a scan, return the origin ASN of the most-specific covering
prefix.  Lookups are hot (every scan record is annotated), so prefixes
are bucketed by length and matched by masked-integer dictionary lookup —
O(#distinct-lengths) per query with no per-query allocation.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.net.ipv4 import IPv4Prefix, int_to_ip, ip_to_int


class RoutingTable:
    """Longest-prefix-match IP → origin-ASN table."""

    def __init__(self) -> None:
        # length -> {masked network int -> asn}
        self._by_length: dict[int, dict[int, int]] = {}
        # Lazily (re)derived: sorting on every add made bulk loading
        # O(n·k log k); a new length bucket only invalidates the order.
        self._lengths_desc: tuple[int, ...] | None = ()
        self._count = 0

    def add(self, prefix: str | IPv4Prefix, asn: int) -> None:
        """Announce ``prefix`` as originated by ``asn``.

        Re-announcing an existing prefix overwrites the previous origin,
        matching how a pfx2as snapshot keeps only the latest mapping.
        """
        if asn <= 0:
            raise ValueError(f"ASN must be positive: {asn}")
        parsed = prefix if isinstance(prefix, IPv4Prefix) else IPv4Prefix.parse(prefix)
        bucket = self._by_length.get(parsed.length)
        if bucket is None:
            bucket = self._by_length[parsed.length] = {}
            self._lengths_desc = None
        if parsed.network not in bucket:
            self._count += 1
        bucket[parsed.network] = asn

    def lookup(self, ip: str | int) -> int | None:
        """Origin ASN of the most-specific prefix covering ``ip``."""
        value = ip if isinstance(ip, int) else ip_to_int(ip)
        lengths = self._lengths_desc
        if lengths is None:
            lengths = self._lengths_desc = tuple(
                sorted(self._by_length, reverse=True)
            )
        for length in lengths:
            mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
            asn = self._by_length[length].get(value & mask)
            if asn is not None:
                return asn
        return None

    def prefixes(self) -> Iterator[tuple[str, int]]:
        """Every ``(CIDR text, origin ASN)`` announcement, sorted."""
        for length in sorted(self._by_length):
            for network in sorted(self._by_length[length]):
                yield f"{int_to_ip(network)}/{length}", self._by_length[length][network]

    def thinned(self, drop: Callable[[str], bool]) -> RoutingTable:
        """A stale snapshot missing every prefix ``drop`` selects.

        Models an out-of-date pfx2as table: lookups under a dropped
        prefix fall through to any covering shorter prefix, or to None —
        the caller's unknown-ASN fallback path.
        """
        table = RoutingTable()
        for prefix, asn in self.prefixes():
            if not drop(prefix):
                table.add(prefix, asn)
        return table

    def __len__(self) -> int:
        return self._count

    def __contains__(self, ip: str) -> bool:
        return self.lookup(ip) is not None
