"""Per-domain features for the classifier baseline.

Features are computed from the same third-party view the pipeline uses
(scan dataset + passive DNS), in the spirit of the pDNS-feature
classifiers the paper cites: deployment churn, geographic and AS spread,
certificate churn and freshness, sensitive naming, and short-lived
resolution behaviour.
"""

from __future__ import annotations

from repro.core.deployment import build_deployment_map
from repro.net.names import is_sensitive_name
from repro.net.timeline import Period
from repro.pdns.database import PassiveDNSDatabase
from repro.scan.dataset import ScanDataset

FEATURE_NAMES: tuple[str, ...] = (
    "n_deployments",
    "n_asns",
    "n_countries",
    "n_certificates",
    "n_issuers",
    "min_cert_age_at_first_sight",
    "has_sensitive_san",
    "presence",
    "min_deployment_span_days",
    "n_short_pdns_rows",
    "n_ns_values",
    "max_ips_per_scan",
)


def domain_features(
    domain: str,
    scan: ScanDataset,
    pdns: PassiveDNSDatabase,
    period: Period,
) -> list[float]:
    """Feature vector for one (domain, period)."""
    records = [r for r in scan.records_for(domain) if period.contains(r.scan_date)]
    map_ = build_deployment_map(
        domain, records, period, scan.scan_dates_in(period)
    )

    certs = {r.certificate.fingerprint: r.certificate for r in records}
    issuers = {c.issuer for c in certs.values()}
    countries = {r.country for r in records}
    asns = {r.asn for r in records}

    min_cert_age = 365.0
    for record in records:
        age = (record.scan_date - record.certificate.not_before).days
        min_cert_age = min(min_cert_age, float(age))
    if not records:
        min_cert_age = 0.0

    sensitive = any(
        is_sensitive_name(name) for r in records for name in r.names
    )

    min_span = 183.0
    for deployment in map_.deployments:
        min_span = min(min_span, float(deployment.span_days))
    if not map_.deployments:
        min_span = 0.0

    pdns_rows = pdns.query_domain(domain, period.interval())
    short_rows = sum(1 for r in pdns_rows if r.span_days <= 30)
    ns_values = len({r.rdata for r in pdns_rows if r.rtype.value == "NS"})

    per_scan_ips: dict = {}
    for record in records:
        per_scan_ips.setdefault(record.scan_date, set()).add(record.ip)
    max_ips = max((len(v) for v in per_scan_ips.values()), default=0)

    return [
        float(len(map_.deployments)),
        float(len(asns)),
        float(len(countries)),
        float(len(certs)),
        float(len(issuers)),
        min_cert_age,
        1.0 if sensitive else 0.0,
        map_.presence,
        min_span,
        float(short_rows),
        float(ns_values),
        float(max_ips),
    ]
