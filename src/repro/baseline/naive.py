"""Naive rule-based detectors: what the pipeline's stages each buy.

Three strawmen of increasing sophistication, each an ablated prefix of
the real methodology:

* ``flag_all_transients`` — every transient deployment is an incident
  (steps 1-2 only, no shortlist heuristics, no corroboration);
* ``flag_shortlisted`` — steps 1-3 (heuristics, no corroboration);
* the full pipeline is steps 1-5.

Comparing their false-positive counts on the same study makes the
funnel's purpose quantitative: each stage exists to kill a class of
benign lookalikes the previous ones admit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.deployment import build_deployment_maps
from repro.core.patterns import PatternConfig, classify
from repro.core.shortlist import ShortlistConfig, Shortlister
from repro.core.types import PatternKind
from repro.ipintel.as2org import AS2Org
from repro.net.timeline import Period
from repro.scan.dataset import ScanDataset


@dataclass(frozen=True, slots=True)
class NaiveResult:
    method: str
    flagged: frozenset[str]

    def score(self, truth: set[str]) -> tuple[float, float, int]:
        """(precision, recall, false positives) against ground truth."""
        if not self.flagged:
            return 1.0, 0.0, 0
        true_positives = len(self.flagged & truth)
        false_positives = len(self.flagged - truth)
        precision = true_positives / len(self.flagged)
        recall = true_positives / len(truth) if truth else 1.0
        return precision, recall, false_positives


def flag_all_transients(
    scan: ScanDataset,
    periods: tuple[Period, ...],
    config: PatternConfig | None = None,
) -> NaiveResult:
    """Steps 1-2 only: every transient map is an incident."""
    maps = build_deployment_maps(scan, periods)
    flagged = frozenset(
        domain
        for (domain, _), map_ in maps.items()
        if classify(map_, config).kind is PatternKind.TRANSIENT
    )
    return NaiveResult(method="all-transients", flagged=flagged)


def flag_shortlisted(
    scan: ScanDataset,
    periods: tuple[Period, ...],
    as2org: AS2Org,
    pattern_config: PatternConfig | None = None,
    shortlist_config: ShortlistConfig | None = None,
) -> NaiveResult:
    """Steps 1-3: the shortlist without pDNS/CT corroboration."""
    maps = build_deployment_maps(scan, periods)
    classifications = {
        key: classify(map_, pattern_config) for key, map_ in maps.items()
    }
    entries, _decisions = Shortlister(as2org, shortlist_config).evaluate(classifications)
    return NaiveResult(
        method="shortlist-only", flagged=frozenset(e.domain for e in entries)
    )


def format_comparison(
    results: list[NaiveResult], truth: set[str]
) -> str:
    header = f"{'method':<18} {'flagged':>8} {'precision':>10} {'recall':>8} {'FP':>5}"
    lines = [header, "-" * len(header)]
    for result in results:
        precision, recall, false_positives = result.score(truth)
        lines.append(
            f"{result.method:<18} {len(result.flagged):>8} {precision:>10.2f} "
            f"{recall:>8.2f} {false_positives:>5}"
        )
    return "\n".join(lines)
