"""ML-classifier baseline (the Houser et al. approach, Section 2.1).

The paper contrasts its constructive, attack-requirement-driven
methodology with prior work that trains a classifier over passive-DNS
features.  This package implements that style of baseline from scratch:
per-domain features extracted from the scan + pDNS view, a logistic
regression trained by gradient descent (numpy only), and an evaluation
harness comparing precision/recall against the pipeline's verdicts.
"""

from repro.baseline.features import FEATURE_NAMES, domain_features
from repro.baseline.logreg import LogisticRegression
from repro.baseline.model import BaselineClassifier, train_baseline
from repro.baseline.naive import flag_all_transients, flag_shortlisted

__all__ = [
    "FEATURE_NAMES",
    "domain_features",
    "LogisticRegression",
    "BaselineClassifier",
    "train_baseline",
    "flag_all_transients",
    "flag_shortlisted",
]
