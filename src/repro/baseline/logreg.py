"""Logistic regression from scratch (numpy).

Small, dependency-light implementation: standardized features, L2
regularization, full-batch gradient descent, and class weighting to
cope with the extreme imbalance of hijack detection.
"""

from __future__ import annotations

import numpy as np


class LogisticRegression:
    """Binary logistic regression with L2 regularization."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        iterations: int = 2000,
        l2: float = 1e-3,
        balance_classes: bool = True,
    ) -> None:
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.l2 = l2
        self.balance_classes = balance_classes
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))

    def _standardize(self, features: np.ndarray, fit: bool) -> np.ndarray:
        if fit:
            self._mean = features.mean(axis=0)
            std = features.std(axis=0)
            std[std == 0.0] = 1.0
            self._std = std
        assert self._mean is not None and self._std is not None
        return (features - self._mean) / self._std

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if features.ndim != 2 or features.shape[0] != labels.shape[0]:
            raise ValueError("features must be (n, d) with matching labels")
        if set(np.unique(labels)) - {0.0, 1.0}:
            raise ValueError("labels must be binary 0/1")

        x = self._standardize(features, fit=True)
        n, d = x.shape
        self.weights = np.zeros(d)
        self.bias = 0.0

        if self.balance_classes:
            n_pos = max(labels.sum(), 1.0)
            n_neg = max(n - labels.sum(), 1.0)
            sample_weight = np.where(labels == 1.0, n / (2 * n_pos), n / (2 * n_neg))
        else:
            sample_weight = np.ones(n)

        for _ in range(self.iterations):
            predictions = self._sigmoid(x @ self.weights + self.bias)
            error = (predictions - labels) * sample_weight
            grad_w = (x.T @ error) / n + self.l2 * self.weights
            grad_b = float(error.mean())
            self.weights -= self.learning_rate * grad_w
            self.bias -= self.learning_rate * grad_b
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("model is not fitted")
        x = self._standardize(np.asarray(features, dtype=float), fit=False)
        return self._sigmoid(x @ self.weights + self.bias)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(features) >= threshold).astype(int)
