"""The classifier baseline end to end: train, predict, compare.

Trains on labeled (domain, period) pairs — positives are ground-truth
attack periods, negatives a sample of benign maps — and evaluates
against the constructive pipeline on held-out data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.baseline.features import domain_features
from repro.baseline.logreg import LogisticRegression
from repro.net.timeline import Period, period_of
from repro.pdns.database import PassiveDNSDatabase
from repro.scan.dataset import ScanDataset
from repro.world.groundtruth import GroundTruthLedger


@dataclass
class BaselineClassifier:
    """A trained baseline with its feature extraction context."""

    model: LogisticRegression
    scan: ScanDataset
    pdns: PassiveDNSDatabase
    periods: tuple[Period, ...]
    threshold: float = 0.5

    def score(self, domain: str, period: Period) -> float:
        features = np.array([domain_features(domain, self.scan, self.pdns, period)])
        return float(self.model.predict_proba(features)[0])

    def predict(self, domain: str, period: Period) -> bool:
        return self.score(domain, period) >= self.threshold

    def flagged_domains(self, domains: list[str] | None = None) -> set[str]:
        """Domains flagged in any period (the classifier's 'hijacked' set)."""
        flagged: set[str] = set()
        for domain in domains or self.scan.domains():
            for period in self.periods:
                if not self.scan.scan_dates_in(period):
                    continue
                if self.predict(domain, period):
                    flagged.add(domain)
                    break
        return flagged


def _attack_period(ledger: GroundTruthLedger, domain: str, periods: tuple[Period, ...]) -> Period | None:
    record = ledger.record_for(domain)
    if record is None:
        return None
    try:
        return period_of(record.hijack_date, periods)
    except ValueError:
        return None


def train_baseline(
    scan: ScanDataset,
    pdns: PassiveDNSDatabase,
    periods: tuple[Period, ...],
    ledger: GroundTruthLedger,
    negatives_per_positive: int = 10,
    seed: int = 11,
) -> BaselineClassifier:
    """Train the baseline on this study's ground truth."""
    rng = random.Random(seed)
    attack_domains = ledger.domains()

    rows: list[list[float]] = []
    labels: list[int] = []
    for domain in sorted(attack_domains):
        period = _attack_period(ledger, domain, periods)
        if period is None:
            continue
        rows.append(domain_features(domain, scan, pdns, period))
        labels.append(1)

    benign = [d for d in scan.domains() if d not in attack_domains]
    rng.shuffle(benign)
    n_negatives = min(len(benign), max(1, len(rows)) * negatives_per_positive)
    for domain in benign[:n_negatives]:
        candidate_periods = [p for p in periods if scan.scan_dates_in(p)]
        if not candidate_periods:
            continue
        period = rng.choice(candidate_periods)
        rows.append(domain_features(domain, scan, pdns, period))
        labels.append(0)

    model = LogisticRegression()
    model.fit(np.array(rows), np.array(labels))
    return BaselineClassifier(model=model, scan=scan, pdns=pdns, periods=periods)


@dataclass
class ComparisonRow:
    """Deprecated shim: use :class:`repro.detect.arena.DetectorScore`.

    Kept only so old callers of :func:`compare_methods` keep working;
    the arena scorer is the single scoring implementation now.
    """

    method: str
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def compare_methods(
    flagged: set[str],
    pipeline_found: set[str],
    truth: set[str],
    all_domains: set[str],
) -> list[ComparisonRow]:
    """Deprecated: delegate to :func:`repro.detect.arena.score_sets`.

    The evaluation arena scores every registered detector with one
    implementation; this shim survives one release for callers that
    still compare "the baseline vs the pipeline" by hand.
    """
    import warnings

    from repro.detect.arena import score_sets

    warnings.warn(
        "compare_methods is deprecated; score flagged sets with "
        "repro.detect.arena.score_sets (or run the full sweep with "
        "repro.detect.arena.run_arena)",
        DeprecationWarning,
        stacklevel=2,
    )
    del all_domains  # kept for signature compatibility; rates need only the sets
    return [
        ComparisonRow(method=s.method, precision=s.precision, recall=s.recall)
        for s in (
            score_sets("ml-baseline", flagged, truth),
            score_sets("pipeline", pipeline_found, truth),
        )
    ]
