"""ACME domain validation against the live resolver.

The DNS-01 flow: the requester asks for a certificate, the CA hands back
a challenge token per name, the requester publishes the token as a TXT
record at ``_acme-challenge.<name>``, and the CA resolves that record
*through the public DNS as it stands at that instant*.  A hijacker who
controls the domain's delegation during the validation window therefore
passes; the legitimate owner's unrelated infrastructure is never
consulted.  This is the mechanism that turns a DNS hijack into a
browser-trusted certificate (Section 3, "Adversary-in-the-Middle
Capability").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.ca.authority import CertificateAuthority
from repro.ct.log import CTLog
from repro.dns.nameserver import NameserverHost
from repro.dns.records import RRType
from repro.dns.resolver import RecursiveResolver
from repro.tls.certificate import Certificate


class AcmeError(Exception):
    """Domain validation failed."""


def challenge_token(ca_name: str, fqdn: str, at: datetime) -> str:
    """Deterministic challenge token (stands in for a random nonce)."""
    seed = f"{ca_name}|{fqdn}|{at.isoformat()}"
    return hashlib.sha256(seed.encode()).hexdigest()[:32]


@dataclass
class ChallengePublisher:
    """The requester's side of DNS-01: a host they can publish TXT on.

    For the legitimate owner this is their authoritative nameserver; for
    the attacker it is the rogue nameserver their hijacked delegation
    points at.  The publisher is given the token and installs it for the
    validation window.
    """

    host: NameserverHost
    window_minutes: int = 60

    def publish(self, fqdn: str, token: str, at: datetime) -> None:
        name = f"_acme-challenge.{fqdn}"
        self.host.add_record(
            name, RRType.TXT, token, start=at, end=at + timedelta(minutes=self.window_minutes)
        )


class AcmeServer:
    """A CA's ACME endpoint: order → challenge → validate → issue → log."""

    def __init__(
        self,
        ca: CertificateAuthority,
        resolver: RecursiveResolver,
        ct_log: CTLog,
    ) -> None:
        if not ca.profile.acme:
            raise ValueError(f"{ca.name} does not offer ACME issuance")
        self._ca = ca
        self._resolver = resolver
        self._ct_log = ct_log

    @property
    def ca(self) -> CertificateAuthority:
        return self._ca

    def request_certificate(
        self,
        names: tuple[str, ...],
        publisher: ChallengePublisher,
        at: datetime,
    ) -> Certificate:
        """Run DNS-01 for every name; issue and CT-log on success.

        Raises :class:`AcmeError` if any name fails validation — i.e. if
        the public resolution of ``_acme-challenge.<name>`` TXT at ``at``
        does not return the token the CA handed to this requester.
        """
        if not names:
            raise AcmeError("order contains no names")
        tokens: dict[str, str] = {}
        for fqdn in names:
            token = challenge_token(self._ca.name, fqdn, at)
            tokens[fqdn] = token
            publisher.publish(fqdn, token, at)

        validate_at = at + timedelta(minutes=5)
        for fqdn, token in tokens.items():
            resolution = self._resolver.resolve(
                f"_acme-challenge.{fqdn}", RRType.TXT, validate_at
            )
            if not resolution.ok or token not in resolution.answers:
                raise AcmeError(
                    f"DNS-01 validation failed for {fqdn}: "
                    f"status={resolution.status.value} answers={resolution.answers}"
                )

        cert = self._ca.issue(names, on=validate_at.date())
        logged, _sct = self._ct_log.submit(cert, timestamp=validate_at.date())
        return logged
