"""Certificate authorities and ACME domain validation.

CA profiles encode the issuance policies the paper's Table 9 analysis
depends on (Let's Encrypt: 90-day ACME DV, OCSP-only; Comodo/Sectigo:
free 90-day trial DV with a CRL; DigiCert: year-long OV), and the
:class:`AcmeServer` performs the DNS-01 domain-validation check against
the live recursive resolver — so a certificate request succeeds exactly
when the requester controls the domain's resolution *at that instant*,
which is what lets a DNS infrastructure hijacker obtain a browser-trusted
certificate.
"""

from repro.ca.authority import (
    CAProfile,
    CertificateAuthority,
    default_authorities,
    COMODO,
    DIGICERT,
    INTERNAL_CA,
    LETS_ENCRYPT,
)
from repro.ca.acme import AcmeError, AcmeServer, ChallengePublisher

__all__ = [
    "CAProfile",
    "CertificateAuthority",
    "default_authorities",
    "COMODO",
    "DIGICERT",
    "INTERNAL_CA",
    "LETS_ENCRYPT",
    "AcmeError",
    "AcmeServer",
    "ChallengePublisher",
]
