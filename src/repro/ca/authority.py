"""Certificate-authority profiles and the issuing CA object."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from datetime import date, timedelta

from repro.tls.certificate import Certificate, ValidationLevel
from repro.tls.revocation import RevocationMechanism, RevocationRegistry
from repro.tls.truststore import ALL_PROGRAMS, RootProgram, TrustStore


@dataclass(frozen=True, slots=True)
class CAProfile:
    """Issuance policy of one certificate authority."""

    name: str
    validity_days: int
    validation: ValidationLevel
    revocation: RevocationMechanism
    free: bool
    acme: bool
    trusted_programs: frozenset[RootProgram]

    @property
    def browser_trusted(self) -> bool:
        return bool(self.trusted_programs)


LETS_ENCRYPT = CAProfile(
    name="Let's Encrypt",
    validity_days=90,
    validation=ValidationLevel.DV,
    revocation=RevocationMechanism.OCSP,
    free=True,
    acme=True,
    trusted_programs=ALL_PROGRAMS,
)

COMODO = CAProfile(
    name="Comodo",
    validity_days=90,  # free trial certificates
    validation=ValidationLevel.DV,
    revocation=RevocationMechanism.CRL,
    free=True,
    acme=True,
    trusted_programs=ALL_PROGRAMS,
)

DIGICERT = CAProfile(
    name="DigiCert Inc",
    validity_days=365,
    validation=ValidationLevel.OV,
    revocation=RevocationMechanism.CRL,
    free=False,
    acme=False,
    trusted_programs=ALL_PROGRAMS,
)

INTERNAL_CA = CAProfile(
    name="Internal Enterprise CA",
    validity_days=730,
    validation=ValidationLevel.OV,
    revocation=RevocationMechanism.CRL,
    free=True,
    acme=False,
    trusted_programs=frozenset(),
)

_DEFAULT_PROFILES = (LETS_ENCRYPT, COMODO, DIGICERT, INTERNAL_CA)

class CertificateAuthority:
    """An issuing CA: mints certificates under its profile's policy."""

    def __init__(self, profile: CAProfile, revocations: RevocationRegistry) -> None:
        self.profile = profile
        self._revocations = revocations
        # Serials are per-CA (as in the real PKI) and restart at 1 for
        # every authority instance, so two worlds built from the same
        # seed mint byte-identical certificates — which is what lets
        # the stage cache's content digest recognize them as the same
        # inputs.
        self._serials = itertools.count(1)
        revocations.set_mechanism(profile.name, profile.revocation)

    @property
    def name(self) -> str:
        return self.profile.name

    def issue(
        self,
        names: tuple[str, ...],
        on: date,
        validity_days: int | None = None,
    ) -> Certificate:
        """Mint a certificate (validation is the ACME server's job)."""
        if not names:
            raise ValueError("cannot issue a certificate with no names")
        return Certificate(
            serial=next(self._serials),
            common_name=names[0],
            sans=tuple(names),
            issuer=self.profile.name,
            not_before=on,
            not_after=on + timedelta(days=validity_days or self.profile.validity_days),
            validation=self.profile.validation,
        )

    def revoke(self, cert: Certificate, on: date, reason: str = "unspecified") -> None:
        if cert.issuer != self.profile.name:
            raise ValueError(f"{self.name} did not issue {cert}")
        self._revocations.revoke(cert, on, reason)


def default_authorities(
    revocations: RevocationRegistry,
    trust_store: TrustStore | None = None,
) -> dict[str, CertificateAuthority]:
    """Build the study's CA population; registers trust as a side effect."""
    authorities: dict[str, CertificateAuthority] = {}
    for profile in _DEFAULT_PROFILES:
        authorities[profile.name] = CertificateAuthority(profile, revocations)
        if trust_store is not None and profile.browser_trusted:
            trust_store.include(profile.name, profile.trusted_programs)
    return authorities
