"""Picklable per-item work functions dispatched by the backends.

A kernel maps a chunk of items to a result per item, using only the
process-global pipeline inputs installed by :func:`set_context` — set
in the parent before the pool forks (workers inherit them copy-on-
write) or, on spawn-only platforms, sent once per worker through
:func:`worker_init`.  Either way the heavyweight datasets are never
re-pickled per chunk.  Kernels must be pure per-item maps —
``kernel(a + b) == kernel(a) + kernel(b)`` — which is what lets the
serial and process-pool backends produce identical products regardless
of sharding.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable

from repro.faults.errors import InjectedWorkerCrash
from repro.faults.plan import CRASH, SLOW
from repro.obs.metrics import drain_worker_snapshot, mark_worker

_INPUTS: Any = None
_CONFIG: Any = None

KERNELS: dict[str, Callable[[list], list]] = {}

#: Kernels whose item sequence a worker can regenerate from the
#: process-global inputs.  The shard scheduler hands such kernels
#: ``(lo, hi)`` ranges instead of pickled item lists, so a million-item
#: fan-out ships two ints per shard and the parent never materializes
#: the items at all (segment-backed pools decode them transiently).
ITEM_SOURCES: dict[str, Callable[[], Any]] = {}

#: Kernels that can consume an ``(lo, hi)`` ordinal range *directly*,
#: without the worker materializing the item objects first.  The shard
#: path prefers these: at population scale, decoding a million pooled
#: domain strings per sweep costs more resident memory than the kernel's
#: actual work (see ``_deployment_range_kernel``).
RANGE_KERNELS: dict[str, Callable[[int, int], list]] = {}


def kernel(name: str) -> Callable:
    def register(fn: Callable[[list], list]) -> Callable[[list], list]:
        KERNELS[name] = fn
        return fn

    return register


def range_kernel(name: str) -> Callable:
    """Register a kernel's ordinal-range fast path (same results as the
    item form over ``items[lo:hi]`` — the differential tests hold both
    to that contract)."""

    def register(fn: Callable[[int, int], list]) -> Callable[[int, int], list]:
        RANGE_KERNELS[name] = fn
        return fn

    return register


def item_source(name: str) -> Callable:
    """Register the in-process item sequence of one shardable kernel."""

    def register(fn: Callable[[], Any]) -> Callable[[], Any]:
        ITEM_SOURCES[name] = fn
        return fn

    return register


def set_context(inputs: Any, config: Any) -> None:
    """Install the pipeline inputs kernels operate on (per process)."""
    global _INPUTS, _CONFIG
    _INPUTS = inputs
    _CONFIG = config


def worker_init(inputs: Any, config: Any) -> None:
    """Process-pool initializer: runs once in every worker."""
    set_context(inputs, config)
    mark_worker()


def worker_init_shm(name: str, size: int) -> None:
    """Spawn-path initializer: attach to the parent's shared-memory
    input image instead of receiving a pickled copy per worker.

    The parent pickled ``(inputs, config)`` once into a
    ``multiprocessing.shared_memory`` block; every worker (including
    replacements after a pool rebuild) reattaches to the same block, so
    the payload crosses process boundaries exactly once regardless of
    pool size or crash count.
    """
    from multiprocessing import shared_memory

    import pickle

    # Attaching re-registers the block with the resource tracker the
    # worker inherited from the parent; registrations collapse in the
    # tracker's name set, and the parent's single ``unlink`` on close
    # balances them — workers never unregister (doing so would strip
    # the parent's own registration from the shared tracker).
    block = shared_memory.SharedMemory(name=name)
    inputs, config = pickle.loads(bytes(block.buf[:size]))
    block.close()
    set_context(inputs, config)
    mark_worker()


def run_chunk(
    name: str, chunk: list, fault: str | None = None
) -> tuple[int, float, list, tuple]:
    """Execute one chunk: (pid, busy seconds, per-item results, obs).

    ``fault`` is a directive the parent drew from its fault plan before
    dispatch: ``"crash"`` raises :class:`InjectedWorkerCrash` before any
    work happens (the backend's retry loop catches it), ``"slow:MS"``
    sleeps ``MS`` milliseconds first.  ``None`` — the only value an
    empty plan ever produces — leaves the kernel untouched.

    ``obs`` piggybacks this process's observability data on the return
    path: the chunk's (start, end) ``perf_counter`` readings — spanning
    any injected slowdown, unlike the busy seconds — plus the process's
    drained metrics snapshot (None when nothing was recorded).  The
    executor grafts the timings into the trace as task-chunk spans and
    merges the snapshot into the run's registry.
    """
    chunk_start = time.perf_counter()
    if fault is not None:
        if fault == CRASH:
            raise InjectedWorkerCrash(
                f"injected worker crash in kernel {name!r} (pid {os.getpid()})"
            )
        if fault.startswith(SLOW):
            time.sleep(int(fault.split(":", 1)[1]) / 1000.0)
    start = time.perf_counter()
    results = KERNELS[name](chunk)
    end = time.perf_counter()
    obs = (chunk_start, end, drain_worker_snapshot())
    return os.getpid(), end - start, results, obs


def run_range_chunk(
    name: str, lo: int, hi: int, fault: str | None = None
) -> tuple[int, float, list, tuple]:
    """Execute one ``(lo, hi)`` item range of a shardable kernel.

    The worker slices the items out of its own process-global inputs
    (see :data:`ITEM_SOURCES`) — the shard descriptor that traveled is
    two ints.  Fault directives behave exactly like :func:`run_chunk`.
    """
    chunk_start = time.perf_counter()
    if fault is not None:
        if fault == CRASH:
            raise InjectedWorkerCrash(
                f"injected worker crash in kernel {name!r} (pid {os.getpid()})"
            )
        if fault.startswith(SLOW):
            time.sleep(int(fault.split(":", 1)[1]) / 1000.0)
    range_fn = RANGE_KERNELS.get(name)
    if range_fn is not None:
        start = time.perf_counter()
        results = range_fn(lo, hi)
    else:
        items = list(ITEM_SOURCES[name]()[lo:hi])
        start = time.perf_counter()
        results = KERNELS[name](items)
    end = time.perf_counter()
    obs = (chunk_start, end, drain_worker_snapshot())
    return os.getpid(), end - start, results, obs


# -- the pipeline's kernels ----------------------------------------------------


@kernel("deployment")
def _deployment_kernel(domains: list[str]) -> list[list]:
    """Step 1: each domain's deployment maps, in columnar encoded form.

    Clusters directly over the scan table's column slices and ships back
    the compact int-tuple encoding — interned pool ids, not object
    graphs (see ``encode_domain_maps``).  The deployment stage decodes
    against the parent's table and reattaches the raw records there.

    Domains with no in-period deployments encode as ``()``, not ``[]``:
    the empty tuple is a shared singleton on both sides of the pickle,
    so at population scale the parent's dense result list costs one
    pointer per empty domain instead of a distinct empty-list object.
    """
    from repro.core.deployment import encode_domain_maps

    return [
        encode_domain_maps(
            _INPUTS.scan, domain, _INPUTS.periods, _CONFIG.max_gap_scans
        )
        or ()
        for domain in domains
    ]


@range_kernel("deployment")
def _deployment_range_kernel(lo: int, hi: int) -> list:
    """Shard fast path: sweep a domain-*ordinal* range of the CSR.

    ``domains()[i]`` and CSR position ``i`` name the same domain, so the
    sweep indexes ``csr_off`` directly and never decodes a domain string
    — on a segment-backed table the worker faults only the CSR index
    pages, not the domain pool, for the (overwhelming) majority of
    domains whose encoding comes back empty.
    """
    from repro.core.deployment import encode_domain_maps_at

    return [
        encode_domain_maps_at(
            _INPUTS.scan, index, _INPUTS.periods, _CONFIG.max_gap_scans
        )
        or ()
        for index in range(lo, hi)
    ]


@item_source("deployment")
def _deployment_items():
    """The deployment kernel's items: every registered domain, in the
    scan table's sorted domain order (a lazy pool view when the inputs
    are segment-backed)."""
    return _INPUTS.scan.domains()


@kernel("classify")
def _classify_kernel(items: list) -> list:
    """Step 2: classify each domain's encoded maps in interned-id space.

    Items are the deployment stage's ``(domain, encoded_maps)`` pairs;
    each result is the domain's ``(period_index, EncodedClassification)``
    tuple.  Nothing is decoded: the classifier compares scan-calendar
    indices and pool ids directly (see ``classify_encoded``), and the
    only calendar quantity — the transient span in days — reads from the
    period's scan-date ordinals, memoized per period across the chunk.
    """
    from repro.core.patterns import classify_encoded

    by_index = {p.index: p for p in _INPUTS.periods}
    date_ords: dict[int, tuple[int, ...]] = {}
    results = []
    for _domain, encoded_maps in items:
        per_domain = []
        for period_index, enc_deployments in encoded_maps:
            ords = date_ords.get(period_index)
            if ords is None:
                ords = tuple(
                    d.toordinal()
                    for d in _INPUTS.scan.scan_dates_in(by_index[period_index])
                )
                date_ords[period_index] = ords
            per_domain.append(
                (
                    period_index,
                    classify_encoded(enc_deployments, ords, _CONFIG.patterns),
                )
            )
        results.append(tuple(per_domain))
    return results


@kernel("inspect")
def _inspect_kernel(entries: list) -> list:
    """Step 4: corroborate shortlisted entries against pDNS and CT.

    Returns each result in its compact wire form — pDNS-table row ids
    and ``(fingerprint, publication ordinal)`` CT references, not the
    evidence object graphs — which the stage decodes against the parent
    process's columnar tables (the same payload its cache entry stores).
    """
    from repro.core.inspection import Inspector, encode_inspection

    inspector = Inspector(_INPUTS.pdns, _INPUTS.crtsh, _CONFIG.inspection)
    return [
        encode_inspection(result, _INPUTS.pdns, _INPUTS.crtsh)
        for result in inspector.inspect_many(entries)
    ]
