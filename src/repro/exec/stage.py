"""The stage protocol and the shared context stages operate on.

A stage is a named unit of the funnel: it reads earlier products off the
:class:`StageContext`, computes its own, writes them back, and reports
its input/output cardinalities so the executor can account for the
funnel's narrowing.  Stages hold no state of their own — everything
flows through the context — which is what lets one stage list run under
any backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.exec.metrics import StageStats
from repro.faults.quality import DataQuality

if TYPE_CHECKING:
    from repro.exec.backends import ExecutionBackend


@dataclass
class StageContext:
    """Inputs plus every intermediate product of one pipeline run.

    Concrete pipelines subclass this with typed fields for their
    products; the base carries only what every run needs: the immutable
    input bundle, the configuration, and the run's data-quality ledger
    (empty — ``degraded == False`` — unless faults degraded the inputs
    or the backend absorbed worker failures).
    """

    inputs: Any
    config: Any
    quality: DataQuality = field(default_factory=DataQuality)


class Stage(ABC):
    """One named step of a staged pipeline."""

    #: Stable identifier used in logs, metrics, and the run manifest.
    name: str = ""

    #: Whether the stage fans out through ``backend.map`` (documentation
    #: for the manifest; serial stages still receive the backend).
    parallel: bool = False

    #: Context fields this stage produces.  A stage-cache hit restores
    #: exactly these onto the context and skips ``run``; an empty tuple
    #: marks the stage uncacheable (it always runs).
    products: tuple[str, ...] = ()

    #: Salts the stage's cache fingerprint.  Bump whenever the stage's
    #: computation changes meaning, so entries written by older code
    #: miss instead of resurrecting stale results.
    cache_version: int = 1

    #: Top-level config fields this stage's computation reads.  The
    #: stage's cache fingerprint folds in only these (plus those of
    #: every upstream stage), so sweeps over unrelated knobs still hit.
    #: ``None`` — the conservative default — depends on the whole
    #: config.
    config_deps: tuple[str, ...] | None = None

    @abstractmethod
    def run(self, ctx: StageContext, backend: ExecutionBackend) -> StageStats:
        """Execute the stage, mutating ``ctx``, and report cardinalities."""

    def cache_products(self, ctx: StageContext) -> dict[str, Any]:
        """The product mapping the cache stores on a miss.

        Override to shrink the pickled entry by stripping anything
        rederivable from the inputs (the same trick the worker kernels
        use on the wire); pair every override with
        :meth:`restore_products`, which must undo the stripping exactly.
        """
        return {name: getattr(ctx, name) for name in self.products}

    def restore_products(self, ctx: StageContext, products: dict[str, Any]) -> None:
        """Install a stored product mapping onto the context.

        Called on a cache hit, and again right after a store (the stored
        mapping shares objects with the context, so any stripping
        ``cache_products`` did must be reversed either way).
        """
        for name in self.products:
            setattr(ctx, name, products[name])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
