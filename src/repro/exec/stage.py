"""The stage protocol and the shared context stages operate on.

A stage is a named unit of the funnel: it reads earlier products off the
:class:`StageContext`, computes its own, writes them back, and reports
its input/output cardinalities so the executor can account for the
funnel's narrowing.  Stages hold no state of their own — everything
flows through the context — which is what lets one stage list run under
any backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.exec.metrics import StageStats
from repro.faults.quality import DataQuality

if TYPE_CHECKING:
    from repro.exec.backends import ExecutionBackend


@dataclass
class StageContext:
    """Inputs plus every intermediate product of one pipeline run.

    Concrete pipelines subclass this with typed fields for their
    products; the base carries only what every run needs: the immutable
    input bundle, the configuration, and the run's data-quality ledger
    (empty — ``degraded == False`` — unless faults degraded the inputs
    or the backend absorbed worker failures).
    """

    inputs: Any
    config: Any
    quality: DataQuality = field(default_factory=DataQuality)


class Stage(ABC):
    """One named step of a staged pipeline."""

    #: Stable identifier used in logs, metrics, and the run manifest.
    name: str = ""

    #: Whether the stage fans out through ``backend.map`` (documentation
    #: for the manifest; serial stages still receive the backend).
    parallel: bool = False

    @abstractmethod
    def run(self, ctx: StageContext, backend: ExecutionBackend) -> StageStats:
        """Execute the stage, mutating ``ctx``, and report cardinalities."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
