"""Pluggable schedulers for the pipeline's fan-out stages.

Both backends expose the same contract: ``map(kernel_name, items, key)``
returns one result per item, **aligned with the input order**, no matter
how the work was sharded.  That alignment — plus kernels being pure
per-item maps — is the whole determinism story: stage products are
assembled in input order, so the serial and process-pool paths produce
byte-identical reports.

The process-pool backend shards items across workers by a stable hash
of their domain key (``crc32``, never Python's randomized ``hash``),
then splits each worker's bucket into chunks so long-running buckets
pipeline instead of serializing.  On platforms with ``fork`` the heavy
inputs never travel at all: the parent installs them as kernel globals
*before* the pool spawns, so workers inherit them copy-on-write;
elsewhere they ship once per worker via the pool initializer.  Chunks
carry only the items themselves.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
import zlib
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.exec import kernels
from repro.exec.metrics import RetryEvent, TaskEvent
from repro.faults.errors import RetryBudgetExceeded, WorkerFault
from repro.faults.plan import SLOW

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan

#: How many chunks each worker gets by default when no chunk size is set;
#: >1 so an unlucky hash bucket does not serialize the whole stage.
_CHUNKS_PER_WORKER = 4

#: Retry policy used when no fault plan supplies one: a genuinely broken
#: process pool is still rebuilt and retried this many times.
_DEFAULT_MAX_RETRIES = 3
_DEFAULT_BACKOFF_MS = 20


class ExecutionBackend(ABC):
    """Schedules kernel invocations for the executor."""

    name: str = ""
    jobs: int = 1
    chunk_size: int | None = None

    def __init__(self) -> None:
        self._events: list[TaskEvent] = []
        self._retry_events: list[RetryEvent] = []
        self._fault_plan: FaultPlan | None = None

    def start(self, inputs: Any, config: Any) -> None:
        """Install the run's inputs before the first ``map`` call."""

    def install_faults(self, plan: FaultPlan | None) -> None:
        """Adopt a fault plan for this run; None or an empty plan means
        no injection, which leaves every dispatch path byte-identical to
        a backend that never heard of faults."""
        self._fault_plan = None if plan is None or plan.is_empty else plan

    @abstractmethod
    def map(
        self,
        kernel_name: str,
        items: Sequence,
        key: Callable[[Any], str],
    ) -> list:
        """Apply a kernel to every item, results aligned with ``items``."""

    # -- fault + retry machinery (inert without an installed plan) -----------

    def _max_attempts(self) -> int:
        if self._fault_plan is not None:
            return self._fault_plan.spec.max_retries
        return _DEFAULT_MAX_RETRIES

    def _backoff_seconds(self, attempt: int) -> float:
        if self._fault_plan is not None:
            return self._fault_plan.backoff_seconds(attempt)
        return (_DEFAULT_BACKOFF_MS / 1000.0) * 2**attempt

    def _chunk_fault(self, kernel_name: str, token: Any, attempt: int) -> str | None:
        """The fault directive (if any) for one dispatch attempt.

        Decided in the parent from the deterministic plan — workers only
        obey directives, so a re-run with the same ``(seed, spec)``
        injects the same faults into the same chunks.
        """
        if self._fault_plan is None:
            return None
        fault = self._fault_plan.worker_fault(kernel_name, token, attempt)
        if fault is not None and fault.startswith(SLOW):
            self._record_retry(kernel_name, "slow", attempt)
        return fault

    def run_inline(self, kernel_name: str, items: Sequence) -> list:
        """Run a kernel in the calling process, bypassing any fan-out.

        Stages whose work is cheaper than shipping its operands (e.g.
        classification: microseconds per map, kilobytes per map) use
        this so both backends execute them identically in the parent.
        Injected crashes are retried with exponential backoff, exactly
        like a process-pool chunk.
        """
        items = list(items)
        if not items:
            return []
        max_attempts = self._max_attempts()
        for attempt in range(max_attempts):
            fault = self._chunk_fault(kernel_name, "inline", attempt)
            try:
                pid, seconds, results, obs = kernels.run_chunk(
                    kernel_name, items, fault
                )
            except WorkerFault as exc:
                if attempt + 1 >= max_attempts:
                    raise RetryBudgetExceeded(
                        f"kernel {kernel_name!r} failed {max_attempts} times"
                    ) from exc
                self._record_retry(kernel_name, "crash", attempt)
                time.sleep(self._backoff_seconds(attempt))
                continue
            self._record(TaskEvent(pid, seconds, len(items), kernel_name, obs))
            return results
        raise AssertionError("unreachable: retry loop exits via return or raise")

    def _record(self, event: TaskEvent) -> None:
        self._events.append(event)

    def _record_retry(self, kernel: str, kind: str, attempt: int) -> None:
        self._retry_events.append(RetryEvent(kernel, kind, attempt))

    def pop_events(self) -> list[TaskEvent]:
        """Drain the task events recorded since the last call."""
        events, self._events = self._events, []
        return events

    def pop_retry_events(self) -> list[RetryEvent]:
        """Drain the fault/retry events recorded since the last call."""
        events, self._retry_events = self._retry_events, []
        return events

    def close(self) -> None:
        """Release any resources held since :meth:`start`."""


class SerialBackend(ExecutionBackend):
    """Run every kernel inline in the calling process."""

    name = "serial"
    jobs = 1

    def start(self, inputs: Any, config: Any) -> None:
        kernels.set_context(inputs, config)

    def map(
        self,
        kernel_name: str,
        items: Sequence,
        key: Callable[[Any], str],
    ) -> list:
        return self.run_inline(kernel_name, items)


class ProcessPoolBackend(ExecutionBackend):
    """Shard kernel work across worker processes by domain hash."""

    name = "process"

    def __init__(self, jobs: int | None = None, chunk_size: int | None = None) -> None:
        super().__init__()
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        self._pool: ProcessPoolExecutor | None = None
        self._inputs: Any = None
        self._config: Any = None

    def start(self, inputs: Any, config: Any) -> None:
        # Install the inputs in the parent first: with the fork start
        # method the workers inherit them copy-on-write and nothing is
        # pickled; it also lets the parent service run_inline stages.
        # Kept on the backend so a broken pool can be rebuilt mid-run.
        self._inputs = inputs
        self._config = config
        kernels.set_context(inputs, config)
        self._spawn_pool()

    def _spawn_pool(self) -> None:
        if "fork" in multiprocessing.get_all_start_methods():
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("fork"),
            )
        else:  # spawn-only platforms: ship the inputs once per worker
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=kernels.worker_init,
                initargs=(self._inputs, self._config),
            )

    def _rebuild_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._spawn_pool()

    def _submit_chunk(
        self, kernel_name: str, items: list, chunk: list[int], ordinal: int, attempt: int
    ):
        fault = self._chunk_fault(kernel_name, ordinal, attempt)
        return self._pool.submit(
            kernels.run_chunk, kernel_name, [items[i] for i in chunk], fault
        )

    def map(
        self,
        kernel_name: str,
        items: Sequence,
        key: Callable[[Any], str],
    ) -> list:
        if self._pool is None:
            raise RuntimeError("backend not started")
        items = list(items)
        if not items:
            return []
        chunks = self._chunks(items, key)
        max_attempts = self._max_attempts()
        attempts = [0] * len(chunks)
        futures = [
            self._submit_chunk(kernel_name, items, chunk, ordinal, 0)
            for ordinal, chunk in enumerate(chunks)
        ]
        results: list = [None] * len(items)
        for ordinal, chunk in enumerate(chunks):
            while True:
                attempt = attempts[ordinal]
                try:
                    pid, seconds, chunk_results, obs = futures[ordinal].result()
                except WorkerFault as exc:
                    attempts[ordinal] += 1
                    if attempts[ordinal] >= max_attempts:
                        raise RetryBudgetExceeded(
                            f"kernel {kernel_name!r} chunk {ordinal} failed "
                            f"{max_attempts} times"
                        ) from exc
                    self._record_retry(kernel_name, "crash", attempt)
                    time.sleep(self._backoff_seconds(attempt))
                    futures[ordinal] = self._submit_chunk(
                        kernel_name, items, chunk, ordinal, attempts[ordinal]
                    )
                except BrokenProcessPool as exc:
                    attempts[ordinal] += 1
                    if attempts[ordinal] >= max_attempts:
                        raise RetryBudgetExceeded(
                            f"process pool broke {max_attempts} times running "
                            f"kernel {kernel_name!r}"
                        ) from exc
                    self._record_retry(kernel_name, "pool_rebuild", attempt)
                    time.sleep(self._backoff_seconds(attempt))
                    self._rebuild_pool()
                    # A broken pool voids every outstanding future, not
                    # just this chunk's — resubmit all uncollected work.
                    for later in range(ordinal, len(chunks)):
                        futures[later] = self._submit_chunk(
                            kernel_name, items, chunks[later], later, attempts[later]
                        )
                else:
                    self._record(TaskEvent(pid, seconds, len(chunk), kernel_name, obs))
                    for index, result in zip(chunk, chunk_results):
                        results[index] = result
                    break
        return results

    def _chunks(
        self, items: list, key: Callable[[Any], str]
    ) -> list[list[int]]:
        """Deterministic chunk composition: hash-shard, then split."""
        buckets: list[list[int]] = [[] for _ in range(self.jobs)]
        for index, item in enumerate(items):
            shard = zlib.crc32(key(item).encode("utf-8")) % self.jobs
            buckets[shard].append(index)
        size = self.chunk_size or max(
            1, math.ceil(len(items) / (self.jobs * _CHUNKS_PER_WORKER))
        )
        chunks: list[list[int]] = []
        for bucket in buckets:
            for start in range(0, len(bucket), size):
                chunks.append(bucket[start : start + size])
        return chunks

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
