"""Pluggable schedulers for the pipeline's fan-out stages.

Both backends expose the same contract: ``map(kernel_name, items, key)``
returns one result per item, **aligned with the input order**, no matter
how the work was sharded.  That alignment — plus kernels being pure
per-item maps — is the whole determinism story: stage products are
assembled in input order, so the serial and process-pool paths produce
byte-identical reports.

The process-pool backend has two partition strategies:

* ``partition="hash"`` (default) shards items across workers by a
  stable hash of their domain key (``crc32``, never Python's randomized
  ``hash``), then splits each worker's bucket into chunks so
  long-running buckets pipeline instead of serializing.  Chunks carry
  the items themselves.
* ``partition="shard"`` hands workers contiguous ``(lo, hi)`` index
  ranges of kernels registered in :data:`repro.exec.kernels.ITEM_SOURCES`
  — the worker regenerates the items from its own process-global inputs,
  so a million-item fan-out ships two ints per shard and the parent
  never materializes the item list.  With ``shard_cache=True`` each
  completed shard's results stream into the stage cache under a
  shard-scoped key, so a killed run resumes from its completed shards.

Input transport is governed by the start method: with ``fork`` the
heavy inputs never travel at all — the parent installs them as kernel
globals *before* the pool spawns, so workers inherit them copy-on-write.
With ``spawn`` (explicit, or the platform default when fork is missing)
the parent pickles the inputs *once* into a
``multiprocessing.shared_memory`` block and every worker — including
replacements after a crash-triggered pool rebuild — reattaches to the
same block instead of receiving a per-worker pickled copy.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import time
import zlib
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from hashlib import blake2b
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.exec import kernels
from repro.exec.metrics import RetryEvent, StageStats, TaskEvent
from repro.faults.errors import RetryBudgetExceeded, WorkerFault
from repro.faults.plan import SLOW
from repro.obs.metrics import get_registry

if TYPE_CHECKING:
    from repro.cache.store import StageCache
    from repro.faults.plan import FaultPlan

#: How many chunks each worker gets by default when no chunk size is set;
#: >1 so an unlucky hash bucket does not serialize the whole stage.
_CHUNKS_PER_WORKER = 4

#: Retry policy used when no fault plan supplies one: a genuinely broken
#: process pool is still rebuilt and retried this many times.
_DEFAULT_MAX_RETRIES = 3
_DEFAULT_BACKOFF_MS = 20


class ExecutionBackend(ABC):
    """Schedules kernel invocations for the executor."""

    name: str = ""
    jobs: int = 1
    chunk_size: int | None = None

    def __init__(self) -> None:
        self._events: list[TaskEvent] = []
        self._retry_events: list[RetryEvent] = []
        self._fault_plan: FaultPlan | None = None

    def start(self, inputs: Any, config: Any) -> None:
        """Install the run's inputs before the first ``map`` call."""

    def install_faults(self, plan: FaultPlan | None) -> None:
        """Adopt a fault plan for this run; None or an empty plan means
        no injection, which leaves every dispatch path byte-identical to
        a backend that never heard of faults."""
        self._fault_plan = None if plan is None or plan.is_empty else plan

    def set_shard_context(self, cache: StageCache, fingerprint: str) -> None:
        """Adopt the running stage's cache handle + fingerprint.

        The executor brackets every cache-missed stage with this call so
        a sharding backend can stream per-shard products into the stage
        cache under shard-scoped keys.  The base implementation ignores
        it — only backends that opt into shard caching act on it.
        """

    def clear_shard_context(self) -> None:
        """Drop any shard context installed by :meth:`set_shard_context`."""

    @abstractmethod
    def map(
        self,
        kernel_name: str,
        items: Sequence,
        key: Callable[[Any], str],
    ) -> list:
        """Apply a kernel to every item, results aligned with ``items``."""

    # -- fault + retry machinery (inert without an installed plan) -----------

    def _max_attempts(self) -> int:
        if self._fault_plan is not None:
            return self._fault_plan.spec.max_retries
        return _DEFAULT_MAX_RETRIES

    def _backoff_seconds(self, attempt: int) -> float:
        if self._fault_plan is not None:
            return self._fault_plan.backoff_seconds(attempt)
        return (_DEFAULT_BACKOFF_MS / 1000.0) * 2**attempt

    def _chunk_fault(self, kernel_name: str, token: Any, attempt: int) -> str | None:
        """The fault directive (if any) for one dispatch attempt.

        Decided in the parent from the deterministic plan — workers only
        obey directives, so a re-run with the same ``(seed, spec)``
        injects the same faults into the same chunks.
        """
        if self._fault_plan is None:
            return None
        fault = self._fault_plan.worker_fault(kernel_name, token, attempt)
        if fault is not None and fault.startswith(SLOW):
            self._record_retry(kernel_name, "slow", attempt)
        return fault

    def run_inline(self, kernel_name: str, items: Sequence) -> list:
        """Run a kernel in the calling process, bypassing any fan-out.

        Stages whose work is cheaper than shipping its operands (e.g.
        classification: microseconds per map, kilobytes per map) use
        this so both backends execute them identically in the parent.
        Injected crashes are retried with exponential backoff, exactly
        like a process-pool chunk.
        """
        items = list(items)
        if not items:
            return []
        max_attempts = self._max_attempts()
        for attempt in range(max_attempts):
            fault = self._chunk_fault(kernel_name, "inline", attempt)
            try:
                pid, seconds, results, obs = kernels.run_chunk(
                    kernel_name, items, fault
                )
            except WorkerFault as exc:
                if attempt + 1 >= max_attempts:
                    raise RetryBudgetExceeded(
                        f"kernel {kernel_name!r} failed {max_attempts} times"
                    ) from exc
                self._record_retry(kernel_name, "crash", attempt)
                time.sleep(self._backoff_seconds(attempt))
                continue
            self._record(TaskEvent(pid, seconds, len(items), kernel_name, obs))
            return results
        raise AssertionError("unreachable: retry loop exits via return or raise")

    def _record(self, event: TaskEvent) -> None:
        self._events.append(event)

    def _record_retry(self, kernel: str, kind: str, attempt: int) -> None:
        self._retry_events.append(RetryEvent(kernel, kind, attempt))

    def pop_events(self) -> list[TaskEvent]:
        """Drain the task events recorded since the last call."""
        events, self._events = self._events, []
        return events

    def pop_retry_events(self) -> list[RetryEvent]:
        """Drain the fault/retry events recorded since the last call."""
        events, self._retry_events = self._retry_events, []
        return events

    def close(self) -> None:
        """Release any resources held since :meth:`start`."""


class SerialBackend(ExecutionBackend):
    """Run every kernel inline in the calling process."""

    name = "serial"
    jobs = 1

    def start(self, inputs: Any, config: Any) -> None:
        kernels.set_context(inputs, config)

    def map(
        self,
        kernel_name: str,
        items: Sequence,
        key: Callable[[Any], str],
    ) -> list:
        return self.run_inline(kernel_name, items)


class ProcessPoolBackend(ExecutionBackend):
    """Shard kernel work across worker processes.

    ``start_method`` picks the multiprocessing start method: ``"fork"``,
    ``"spawn"``, or None for the platform default (fork where available).
    ``partition`` selects how items are split — ``"hash"`` (stable
    domain-hash buckets, items travel in the chunk) or ``"shard"``
    (contiguous index ranges for kernels with a registered item source;
    two ints travel per shard).  ``shard_cache=True`` additionally
    streams each completed shard's results through the stage cache so an
    interrupted run resumes from its completed shards.
    """

    name = "process"

    def __init__(
        self,
        jobs: int | None = None,
        chunk_size: int | None = None,
        *,
        start_method: str | None = None,
        partition: str = "hash",
        shard_cache: bool = False,
    ) -> None:
        super().__init__()
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if start_method not in (None, "fork", "spawn"):
            raise ValueError(
                f"start_method must be 'fork', 'spawn', or None, "
                f"got {start_method!r}"
            )
        if partition not in ("hash", "shard"):
            raise ValueError(
                f"partition must be 'hash' or 'shard', got {partition!r}"
            )
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.partition = partition
        self.shard_cache = bool(shard_cache)
        self._pool: ProcessPoolExecutor | None = None
        self._inputs: Any = None
        self._config: Any = None
        self._shm: Any = None
        self._shm_size = 0
        self._shard_ctx: tuple[Any, str, Any] | None = None

    def _resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        if "fork" in multiprocessing.get_all_start_methods():
            return "fork"
        return "spawn"

    def start(self, inputs: Any, config: Any) -> None:
        # Install the inputs in the parent first: with the fork start
        # method the workers inherit them copy-on-write and nothing is
        # pickled; it also lets the parent service run_inline stages.
        # Kept on the backend so a broken pool can be rebuilt mid-run.
        self._inputs = inputs
        self._config = config
        kernels.set_context(inputs, config)
        self._release_shm()
        if self._resolved_start_method() == "spawn":
            self._create_shm()
        self._spawn_pool()

    def _create_shm(self) -> None:
        """Pickle the inputs once into a shared-memory block.

        Segment-backed tables reduce to their paths here, so the image
        stays small; in-RAM bundles pay one pickled copy total instead
        of one per worker — and pool rebuilds after injected crashes
        *reattach* to the same block rather than re-copying anything.
        """
        from multiprocessing import shared_memory

        payload = pickle.dumps((self._inputs, self._config), protocol=5)
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, len(payload))
        )
        self._shm.buf[: len(payload)] = payload
        self._shm_size = len(payload)

    def _release_shm(self) -> None:
        if self._shm is None:
            return
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass
        try:
            self._shm.unlink()
        except OSError:
            pass
        self._shm = None
        self._shm_size = 0

    def _spawn_pool(self) -> None:
        method = self._resolved_start_method()
        if method == "fork":
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("fork"),
            )
        else:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=kernels.worker_init_shm,
                initargs=(self._shm.name, self._shm_size),
            )

    def _rebuild_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._spawn_pool()

    # -- shard caching ---------------------------------------------------------

    def set_shard_context(self, cache: StageCache, fingerprint: str) -> None:
        if not self.shard_cache:
            return
        from repro.cache.resume import ResumeManifest

        self._shard_ctx = (cache, fingerprint, ResumeManifest(cache.root))

    def clear_shard_context(self) -> None:
        self._shard_ctx = None

    def _submit_chunk(
        self, kernel_name: str, items: list, chunk: list[int], ordinal: int, attempt: int
    ):
        fault = self._chunk_fault(kernel_name, ordinal, attempt)
        return self._pool.submit(
            kernels.run_chunk, kernel_name, [items[i] for i in chunk], fault
        )

    def map(
        self,
        kernel_name: str,
        items: Sequence,
        key: Callable[[Any], str],
    ) -> list:
        if self._pool is None:
            raise RuntimeError("backend not started")
        if self.partition == "shard" and kernel_name in kernels.ITEM_SOURCES:
            return self._map_shards(kernel_name, items)
        items = list(items)
        if not items:
            return []
        chunks = self._chunks(items, key)
        max_attempts = self._max_attempts()
        attempts = [0] * len(chunks)
        futures = [
            self._submit_chunk(kernel_name, items, chunk, ordinal, 0)
            for ordinal, chunk in enumerate(chunks)
        ]
        results: list = [None] * len(items)
        for ordinal, chunk in enumerate(chunks):
            while True:
                attempt = attempts[ordinal]
                try:
                    pid, seconds, chunk_results, obs = futures[ordinal].result()
                except WorkerFault as exc:
                    attempts[ordinal] += 1
                    if attempts[ordinal] >= max_attempts:
                        raise RetryBudgetExceeded(
                            f"kernel {kernel_name!r} chunk {ordinal} failed "
                            f"{max_attempts} times"
                        ) from exc
                    self._record_retry(kernel_name, "crash", attempt)
                    time.sleep(self._backoff_seconds(attempt))
                    futures[ordinal] = self._submit_chunk(
                        kernel_name, items, chunk, ordinal, attempts[ordinal]
                    )
                except BrokenProcessPool as exc:
                    attempts[ordinal] += 1
                    if attempts[ordinal] >= max_attempts:
                        raise RetryBudgetExceeded(
                            f"process pool broke {max_attempts} times running "
                            f"kernel {kernel_name!r}"
                        ) from exc
                    self._record_retry(kernel_name, "pool_rebuild", attempt)
                    time.sleep(self._backoff_seconds(attempt))
                    self._rebuild_pool()
                    # A broken pool voids every outstanding future, not
                    # just this chunk's — resubmit all uncollected work.
                    for later in range(ordinal, len(chunks)):
                        futures[later] = self._submit_chunk(
                            kernel_name, items, chunks[later], later, attempts[later]
                        )
                else:
                    self._record(TaskEvent(pid, seconds, len(chunk), kernel_name, obs))
                    for index, result in zip(chunk, chunk_results):
                        results[index] = result
                    break
        return results

    # -- the shard partition path ---------------------------------------------

    def _shard_ranges(self, n: int) -> list[tuple[int, int]]:
        """Contiguous ``(lo, hi)`` index ranges covering ``range(n)``.

        The shard count depends only on ``jobs`` / ``chunk_size``, never
        on ``n`` beyond capping — so a fault plan's deterministic crash
        ordinal survives population rescaling, and resume keys (which
        fold in ``n_shards``) stay stable across re-runs.
        """
        if self.chunk_size:
            count = max(1, math.ceil(n / self.chunk_size))
        else:
            count = min(n, self.jobs * _CHUNKS_PER_WORKER)
        return [(i * n // count, (i + 1) * n // count) for i in range(count)]

    def _submit_shard(
        self, kernel_name: str, lo: int, hi: int, ordinal: int, attempt: int
    ):
        fault = self._chunk_fault(kernel_name, ordinal, attempt)
        return self._pool.submit(
            kernels.run_range_chunk, kernel_name, lo, hi, fault
        )

    def _map_shards(self, kernel_name: str, items: Sequence) -> list:
        """Range-shard a kernel with a registered item source.

        ``items`` is only measured (``len``) and used for result
        alignment — it is never pickled or even iterated in the parent,
        so a lazy segment-backed pool stays on disk.  When a shard
        context is installed (``shard_cache=True`` and the executor is
        computing a cacheable stage), each shard probes the cache first
        and stores its results on completion, giving interrupted runs
        shard-granular resume.
        """
        n = len(items)
        if not n:
            return []
        ranges = self._shard_ranges(n)
        registry = get_registry()
        registry.inc("shards.total", len(ranges))
        cache = fingerprint = manifest = None
        if self._shard_ctx is not None:
            cache, fingerprint, manifest = self._shard_ctx
        results: list = [None] * n
        keys: list[str | None] = [None] * len(ranges)
        pending: list[int] = []
        resumed = 0
        for ordinal, (lo, hi) in enumerate(ranges):
            if cache is not None:
                shard_key = _shard_key(
                    fingerprint, kernel_name, n, len(ranges), ordinal
                )
                keys[ordinal] = shard_key
                entry = cache.get(shard_key)
                if entry is not None:
                    results[lo:hi] = entry.products["results"]
                    resumed += 1
                    continue
            pending.append(ordinal)
        if resumed:
            registry.inc("shards.resumed", resumed)
        max_attempts = self._max_attempts()
        attempts = {ordinal: 0 for ordinal in pending}
        futures = {
            ordinal: self._submit_shard(kernel_name, *ranges[ordinal], ordinal, 0)
            for ordinal in pending
        }
        for position, ordinal in enumerate(pending):
            lo, hi = ranges[ordinal]
            while True:
                attempt = attempts[ordinal]
                try:
                    pid, seconds, shard_results, obs = futures[ordinal].result()
                except WorkerFault as exc:
                    attempts[ordinal] += 1
                    if attempts[ordinal] >= max_attempts:
                        raise RetryBudgetExceeded(
                            f"kernel {kernel_name!r} shard {ordinal} failed "
                            f"{max_attempts} times"
                        ) from exc
                    self._record_retry(kernel_name, "crash", attempt)
                    time.sleep(self._backoff_seconds(attempt))
                    futures[ordinal] = self._submit_shard(
                        kernel_name, lo, hi, ordinal, attempts[ordinal]
                    )
                except BrokenProcessPool as exc:
                    attempts[ordinal] += 1
                    if attempts[ordinal] >= max_attempts:
                        raise RetryBudgetExceeded(
                            f"process pool broke {max_attempts} times running "
                            f"kernel {kernel_name!r}"
                        ) from exc
                    self._record_retry(kernel_name, "pool_rebuild", attempt)
                    time.sleep(self._backoff_seconds(attempt))
                    self._rebuild_pool()
                    # A broken pool voids every outstanding future —
                    # resubmit all uncollected shards.
                    for later in pending[position:]:
                        futures[later] = self._submit_shard(
                            kernel_name, *ranges[later], later, attempts[later]
                        )
                else:
                    self._record(
                        TaskEvent(pid, seconds, hi - lo, kernel_name, obs)
                    )
                    results[lo:hi] = shard_results
                    registry.inc("shards.computed")
                    if cache is not None:
                        cache.put(
                            keys[ordinal],
                            f"shard:{kernel_name}",
                            StageStats(n_in=hi - lo, n_out=len(shard_results)),
                            {"results": list(shard_results)},
                        )
                        manifest.record(
                            fingerprint, kernel_name, n, len(ranges),
                            ordinal, keys[ordinal],
                        )
                    break
        return results

    def _chunks(
        self, items: list, key: Callable[[Any], str]
    ) -> list[list[int]]:
        """Deterministic chunk composition: hash-shard, then split."""
        buckets: list[list[int]] = [[] for _ in range(self.jobs)]
        for index, item in enumerate(items):
            shard = zlib.crc32(key(item).encode("utf-8")) % self.jobs
            buckets[shard].append(index)
        size = self.chunk_size or max(
            1, math.ceil(len(items) / (self.jobs * _CHUNKS_PER_WORKER))
        )
        chunks: list[list[int]] = []
        for bucket in buckets:
            for start in range(0, len(bucket), size):
                chunks.append(bucket[start : start + size])
        return chunks

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._release_shm()
        self._shard_ctx = None


def _shard_key(
    fingerprint: str, kernel: str, n_items: int, n_shards: int, ordinal: int
) -> str:
    """The cache key of one shard's results.

    Derived from the stage fingerprint (which already folds in the input
    bundle, fault plan, config, and stage-chain identity) plus the shard
    geometry, so a resumed run with identical inputs lands on the same
    keys while any change to the population or shard count misses.
    """
    payload = f"{fingerprint}|{kernel}|{n_items}|{n_shards}|{ordinal}"
    return blake2b(payload.encode("utf-8"), digest_size=24).hexdigest()
