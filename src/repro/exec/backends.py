"""Pluggable schedulers for the pipeline's fan-out stages.

Both backends expose the same contract: ``map(kernel_name, items, key)``
returns one result per item, **aligned with the input order**, no matter
how the work was sharded.  That alignment — plus kernels being pure
per-item maps — is the whole determinism story: stage products are
assembled in input order, so the serial and process-pool paths produce
byte-identical reports.

The process-pool backend shards items across workers by a stable hash
of their domain key (``crc32``, never Python's randomized ``hash``),
then splits each worker's bucket into chunks so long-running buckets
pipeline instead of serializing.  On platforms with ``fork`` the heavy
inputs never travel at all: the parent installs them as kernel globals
*before* the pool spawns, so workers inherit them copy-on-write;
elsewhere they ship once per worker via the pool initializer.  Chunks
carry only the items themselves.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
import zlib
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from repro.exec import kernels
from repro.exec.metrics import TaskEvent

#: How many chunks each worker gets by default when no chunk size is set;
#: >1 so an unlucky hash bucket does not serialize the whole stage.
_CHUNKS_PER_WORKER = 4


class ExecutionBackend(ABC):
    """Schedules kernel invocations for the executor."""

    name: str = ""
    jobs: int = 1
    chunk_size: int | None = None

    def __init__(self) -> None:
        self._events: list[TaskEvent] = []

    def start(self, inputs: Any, config: Any) -> None:
        """Install the run's inputs before the first ``map`` call."""

    @abstractmethod
    def map(
        self,
        kernel_name: str,
        items: Sequence,
        key: Callable[[Any], str],
    ) -> list:
        """Apply a kernel to every item, results aligned with ``items``."""

    def run_inline(self, kernel_name: str, items: Sequence) -> list:
        """Run a kernel in the calling process, bypassing any fan-out.

        Stages whose work is cheaper than shipping its operands (e.g.
        classification: microseconds per map, kilobytes per map) use
        this so both backends execute them identically in the parent.
        """
        items = list(items)
        if not items:
            return []
        start = time.perf_counter()
        results = kernels.KERNELS[kernel_name](items)
        self._record(TaskEvent(os.getpid(), time.perf_counter() - start, len(items)))
        return results

    def _record(self, event: TaskEvent) -> None:
        self._events.append(event)

    def pop_events(self) -> list[TaskEvent]:
        """Drain the task events recorded since the last call."""
        events, self._events = self._events, []
        return events

    def close(self) -> None:
        """Release any resources held since :meth:`start`."""


class SerialBackend(ExecutionBackend):
    """Run every kernel inline in the calling process."""

    name = "serial"
    jobs = 1

    def start(self, inputs: Any, config: Any) -> None:
        kernels.set_context(inputs, config)

    def map(
        self,
        kernel_name: str,
        items: Sequence,
        key: Callable[[Any], str],
    ) -> list:
        return self.run_inline(kernel_name, items)


class ProcessPoolBackend(ExecutionBackend):
    """Shard kernel work across worker processes by domain hash."""

    name = "process"

    def __init__(self, jobs: int | None = None, chunk_size: int | None = None) -> None:
        super().__init__()
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        self._pool: ProcessPoolExecutor | None = None

    def start(self, inputs: Any, config: Any) -> None:
        # Install the inputs in the parent first: with the fork start
        # method the workers inherit them copy-on-write and nothing is
        # pickled; it also lets the parent service run_inline stages.
        kernels.set_context(inputs, config)
        if "fork" in multiprocessing.get_all_start_methods():
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("fork"),
            )
        else:  # spawn-only platforms: ship the inputs once per worker
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=kernels.worker_init,
                initargs=(inputs, config),
            )

    def map(
        self,
        kernel_name: str,
        items: Sequence,
        key: Callable[[Any], str],
    ) -> list:
        if self._pool is None:
            raise RuntimeError("backend not started")
        items = list(items)
        if not items:
            return []
        futures = [
            (chunk, self._pool.submit(kernels.run_chunk, kernel_name, [items[i] for i in chunk]))
            for chunk in self._chunks(items, key)
        ]
        results: list = [None] * len(items)
        for chunk, future in futures:
            pid, seconds, chunk_results = future.result()
            self._record(TaskEvent(pid, seconds, len(chunk)))
            for index, result in zip(chunk, chunk_results):
                results[index] = result
        return results

    def _chunks(
        self, items: list, key: Callable[[Any], str]
    ) -> list[list[int]]:
        """Deterministic chunk composition: hash-shard, then split."""
        buckets: list[list[int]] = [[] for _ in range(self.jobs)]
        for index, item in enumerate(items):
            shard = zlib.crc32(key(item).encode("utf-8")) % self.jobs
            buckets[shard].append(index)
        size = self.chunk_size or max(
            1, math.ceil(len(items) / (self.jobs * _CHUNKS_PER_WORKER))
        )
        chunks: list[list[int]] = []
        for bucket in buckets:
            for start in range(0, len(bucket), size):
                chunks.append(bucket[start : start + size])
        return chunks

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
