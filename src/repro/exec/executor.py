"""The executor: drive a stage list over a context, measuring as it goes.

``PipelineExecutor`` owns the backend lifecycle (start before the first
stage, close after the last, even on failure) and produces one
:class:`RunMetrics` per execution.  It is deliberately ignorant of what
the stages compute — the same executor runs the hijack funnel today and
any other staged analysis tomorrow.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.exec.backends import ExecutionBackend, SerialBackend
from repro.exec.metrics import RunMetrics
from repro.exec.stage import Stage, StageContext


class PipelineExecutor:
    """Runs stages in order against a shared context."""

    def __init__(
        self,
        stages: Sequence[Stage],
        backend: ExecutionBackend | None = None,
    ) -> None:
        self._stages = list(stages)
        self._backend = backend or SerialBackend()

    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    def execute(self, ctx: StageContext) -> RunMetrics:
        backend = self._backend
        metrics = RunMetrics(
            backend=backend.name, jobs=backend.jobs, chunk_size=backend.chunk_size
        )
        run_start = time.perf_counter()
        backend.start(ctx.inputs, ctx.config)
        try:
            for stage in self._stages:
                stage_start = time.perf_counter()
                stats = stage.run(ctx, backend)
                wall = time.perf_counter() - stage_start
                metrics.add_stage(
                    stage.name, wall, stats, backend.pop_events(), stage.parallel
                )
                for event in backend.pop_retry_events():
                    if event.kind == "slow":
                        ctx.quality.worker_slowdowns += 1
                    else:
                        ctx.quality.record_retry(event.kind)
        finally:
            backend.close()
        metrics.wall_seconds = time.perf_counter() - run_start
        metrics.data_quality = ctx.quality.to_dict()
        return metrics
