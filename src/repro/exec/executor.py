"""The executor: drive a stage list over a context, measuring as it goes.

``PipelineExecutor`` owns the backend lifecycle (start before the first
stage, close after the last, even on failure) and produces one
:class:`RunMetrics` per execution.  It is deliberately ignorant of what
the stages compute — the same executor runs the hijack funnel today and
any other staged analysis tomorrow.

It is also the run's observability reducer: it installs a fresh
:class:`repro.obs.MetricsRegistry` per run, folds worker-side metric
snapshots (riding the ``TaskEvent`` return path) back into it, feeds
per-kernel latency histograms, samples stage-boundary memory
(:class:`repro.obs.MemorySampler` — peak RSS always, tracemalloc when
asked), and — when given an enabled :class:`repro.obs.Tracer` — emits
the run → stage → task-chunk span tree with fault retries, slowdowns,
and pool rebuilds attached as span events.  With the default disabled
tracer every trace call is a single attribute test, keeping untraced
runs at baseline cost.

Two optional observers ride along without ever steering the run:

* an :class:`repro.obs.EventSink` receives live heartbeat events
  (run/stage/chunk boundaries, retries, ETA) — the ``--events FILE``
  stream and the TTY progress line;
* a :class:`repro.obs.RunLedger` (with its :class:`LedgerInfo`
  identity) gets one durable record appended at run end.  A
  ``ledger_extra`` callable lets the run's owner attach semantics the
  executor cannot know — the golden-report digest, funnel counts —
  computed from the finished context.  Ledger append failures are
  logged and swallowed: telemetry must never fail a run that computed
  its answer.

Given a :class:`repro.cache.StageCache` plus the run's
:class:`repro.cache.RunKey`, the executor probes the cache before each
cacheable stage (one whose ``Stage.products`` is non-empty): a hit
restores the stage's products onto the context without running any
kernels; a miss runs the stage and stores its products.  Probe traffic
is counted in the run's metrics registry (``cache.hits`` /
``cache.misses`` / ``cache.stores`` / ``cache.bytes_*`` /
``cache.evictions``) and summarized in the manifest's ``cache``
section.
"""

from __future__ import annotations

import logging
import time
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.exec.backends import ExecutionBackend, SerialBackend
from repro.exec.metrics import RunMetrics
from repro.exec.stage import Stage, StageContext
from repro.obs.events import NULL_EVENTS, EventSink, stamp
from repro.obs.memory import MemorySampler
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:
    from repro.cache.fingerprint import RunKey
    from repro.cache.store import StageCache
    from repro.obs.ledger import LedgerInfo, RunLedger

logger = logging.getLogger("repro.exec.executor")


class PipelineExecutor:
    """Runs stages in order against a shared context."""

    def __init__(
        self,
        stages: Sequence[Stage],
        backend: ExecutionBackend | None = None,
        tracer: Tracer | None = None,
        cache: StageCache | None = None,
        run_key: RunKey | None = None,
        events: EventSink | None = None,
        memory: bool = False,
        ledger: RunLedger | None = None,
        ledger_info: LedgerInfo | None = None,
        ledger_extra: Callable[[StageContext], dict[str, Any]] | None = None,
    ) -> None:
        self._stages = list(stages)
        self._backend = backend or SerialBackend()
        self._tracer = tracer or NULL_TRACER
        self._cache = cache if run_key is not None else None
        self._run_key = run_key if cache is not None else None
        self._events = events or NULL_EVENTS
        self._memory = MemorySampler(trace_allocations=memory)
        self._ledger = ledger if ledger_info is not None else None
        self._ledger_info = ledger_info if ledger is not None else None
        self._ledger_extra = ledger_extra

    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    def execute(self, ctx: StageContext) -> RunMetrics:
        backend = self._backend
        tracer = self._tracer
        cache = self._cache
        sink = self._events
        sampler = self._memory
        registry = set_registry(MetricsRegistry())
        metrics = RunMetrics(
            backend=backend.name, jobs=backend.jobs, chunk_size=backend.chunk_size
        )
        tally = {
            "hits": 0, "misses": 0, "stores": 0, "evictions": 0,
            "bytes_read": 0, "bytes_written": 0,
        }
        evictions_base = cache.counters.evictions if cache is not None else 0
        # The fingerprint chain: (name, cache_version, config_deps) of
        # every stage so far.  Uncacheable stages still extend it —
        # their code shapes downstream products just the same.
        chain: list[tuple[str, int, tuple[str, ...] | None]] = []
        total = len(self._stages)
        run_start = time.perf_counter()
        sampler.start_run()
        sink.emit(
            stamp(
                {
                    "event": "run_start",
                    "backend": backend.name,
                    "jobs": backend.jobs,
                    "total_stages": total,
                    "stages": [s.name for s in self._stages],
                }
            )
        )
        with tracer.span(
            "run", category="run", backend=backend.name, jobs=backend.jobs
        ):
            backend.start(ctx.inputs, ctx.config)
            try:
                from repro.segments.inputs import inputs_bytes_mapped

                mapped = inputs_bytes_mapped(ctx.inputs)
                if mapped:
                    registry.set_gauge("segments.bytes_mapped", mapped)
            except Exception:  # pragma: no cover - inputs without segments
                pass
            try:
                for index, stage in enumerate(self._stages, start=1):
                    with tracer.span(
                        stage.name, category="stage", parallel=stage.parallel
                    ):
                        sink.emit(
                            stamp(
                                {
                                    "event": "stage_start",
                                    "stage": stage.name,
                                    "index": index,
                                    "total": total,
                                }
                            )
                        )
                        sampler.start_stage()
                        stage_start = time.perf_counter()
                        fingerprint = None
                        if cache is not None:
                            chain.append(
                                (stage.name, stage.cache_version, stage.config_deps)
                            )
                            if stage.products:
                                fingerprint = self._probe(
                                    cache, chain, stage, ctx, metrics,
                                    registry, tracer, tally, stage_start,
                                    sampler,
                                )
                                if fingerprint is None:
                                    # Cache hit, stage satisfied.
                                    self._emit_stage_finish(
                                        sink, metrics, index, total, run_start
                                    )
                                    continue
                        if fingerprint is not None:
                            # Let a sharding backend stream per-shard
                            # products under this stage's fingerprint.
                            backend.set_shard_context(cache, fingerprint)
                        try:
                            stats = stage.run(ctx, backend)
                        finally:
                            if fingerprint is not None:
                                backend.clear_shard_context()
                        wall = time.perf_counter() - stage_start
                        events = backend.pop_events()
                        self._reduce_task_events(
                            events, registry, tracer, sink, stage.name
                        )
                        metrics.add_stage(
                            stage.name, wall, stats, events, stage.parallel,
                            memory=sampler.finish_stage(),
                        )
                        for event in backend.pop_retry_events():
                            tracer.event(
                                event.kind, kernel=event.kernel, attempt=event.attempt
                            )
                            sink.emit(
                                stamp(
                                    {
                                        "event": "retry",
                                        "stage": stage.name,
                                        "kernel": event.kernel,
                                        "kind": event.kind,
                                        "attempt": event.attempt,
                                    }
                                )
                            )
                            if event.kind == "slow":
                                ctx.quality.worker_slowdowns += 1
                            else:
                                ctx.quality.record_retry(event.kind)
                        if fingerprint is not None:
                            products = stage.cache_products(ctx)
                            nbytes = cache.put(
                                fingerprint, stage.name, stats, products
                            )
                            # Undo any stripping cache_products performed
                            # (the mapping shares objects with the ctx).
                            stage.restore_products(ctx, products)
                            registry.inc("cache.stores")
                            registry.inc("cache.bytes_written", nbytes)
                            tally["stores"] += 1
                            tally["bytes_written"] += nbytes
                        self._emit_stage_finish(
                            sink, metrics, index, total, run_start
                        )
            finally:
                backend.close()
        metrics.wall_seconds = time.perf_counter() - run_start
        metrics.data_quality = ctx.quality.to_dict()
        metrics.memory = sampler.finish_run()
        if cache is not None:
            evicted = cache.counters.evictions - evictions_base
            if evicted:
                registry.inc("cache.evictions", evicted)
                tally["evictions"] = evicted
            metrics.cache = {
                "enabled": True,
                "dir": str(cache.root),
                **tally,
            }
        metrics.metrics = registry.snapshot()
        sink.emit(
            stamp(
                {
                    "event": "run_finish",
                    "wall_seconds": round(metrics.wall_seconds, 6),
                    "total_stages": total,
                }
            )
        )
        self._append_ledger(ctx, metrics)
        return metrics

    def _emit_stage_finish(
        self,
        sink: EventSink,
        metrics: RunMetrics,
        index: int,
        total: int,
        run_start: float,
    ) -> None:
        """Emit the stage_finish heartbeat with the run's ETA.

        The ETA is the mean cost of the stages finished so far times the
        stages still to run — crude, but monotone-improving and free.
        """
        if sink is NULL_EVENTS:
            return
        stage = metrics.stages[-1]
        elapsed = time.perf_counter() - run_start
        eta = (elapsed / index) * (total - index)
        sink.emit(
            stamp(
                {
                    "event": "stage_finish",
                    "stage": stage.name,
                    "index": index,
                    "total": total,
                    "wall_seconds": round(stage.wall_seconds, 6),
                    "cached": stage.cached,
                    "n_in": stage.n_in,
                    "n_out": stage.n_out,
                    "eta_seconds": round(eta, 6),
                }
            )
        )

    def _append_ledger(self, ctx: StageContext, metrics: RunMetrics) -> None:
        """Record the finished run; failures are logged, never raised."""
        if self._ledger is None or self._ledger_info is None:
            return
        try:
            from repro.obs.ledger import record_from_metrics

            record = record_from_metrics(metrics, self._ledger_info)
            if self._ledger_extra is not None:
                for field, value in self._ledger_extra(ctx).items():
                    setattr(record, field, value)
            run_id = self._ledger.append(record)
            logger.debug("ledger: recorded run %s", run_id)
        except Exception:
            logger.warning(
                "ledger: failed to record run in %s",
                self._ledger.root,
                exc_info=True,
            )

    def _probe(
        self, cache, chain, stage, ctx, metrics, registry, tracer, tally,
        stage_start, sampler,
    ) -> str | None:
        """Try to satisfy a cacheable stage from the cache.

        Returns the stage's fingerprint on a miss (the caller stores the
        freshly computed products under it) or None on a hit (the stage
        is already satisfied and must be skipped).
        """
        from repro.cache.fingerprint import stage_fingerprint

        fingerprint = stage_fingerprint(self._run_key, chain)
        entry = cache.get(fingerprint)
        if entry is None:
            registry.inc("cache.misses")
            tally["misses"] += 1
            return fingerprint
        stage.restore_products(ctx, entry.products)
        registry.inc("cache.hits")
        registry.inc("cache.bytes_read", entry.nbytes)
        tally["hits"] += 1
        tally["bytes_read"] += entry.nbytes
        tracer.event("cache_hit", stage=stage.name, fingerprint=fingerprint)
        wall = time.perf_counter() - stage_start
        metrics.add_stage(
            stage.name, wall, entry.stats, [], stage.parallel, cached=True,
            memory=sampler.finish_stage(),
        )
        return None

    @staticmethod
    def _reduce_task_events(
        events: list,
        registry: MetricsRegistry,
        tracer: Tracer,
        sink: EventSink = NULL_EVENTS,
        stage_name: str = "",
    ) -> None:
        """Fold chunk observability payloads into the run's registry/trace."""
        emit_chunks = sink is not NULL_EVENTS
        for event in events:
            if event.kernel:
                registry.observe(f"kernel.{event.kernel}.seconds", event.seconds)
            if emit_chunks:
                sink.emit(
                    stamp(
                        {
                            "event": "chunk",
                            "stage": stage_name,
                            "kernel": event.kernel,
                            "pid": event.pid,
                            "items": event.items,
                            "seconds": round(event.seconds, 6),
                        }
                    )
                )
            if event.obs is None:
                continue
            chunk_start, chunk_end, snapshot = event.obs
            if snapshot is not None:
                registry.merge(snapshot)
            if tracer.enabled:
                tracer.add_task_span(
                    f"chunk:{event.kernel}",
                    chunk_start,
                    chunk_end,
                    event.pid,
                    items=event.items,
                )
