"""The executor: drive a stage list over a context, measuring as it goes.

``PipelineExecutor`` owns the backend lifecycle (start before the first
stage, close after the last, even on failure) and produces one
:class:`RunMetrics` per execution.  It is deliberately ignorant of what
the stages compute — the same executor runs the hijack funnel today and
any other staged analysis tomorrow.

It is also the run's observability reducer: it installs a fresh
:class:`repro.obs.MetricsRegistry` per run, folds worker-side metric
snapshots (riding the ``TaskEvent`` return path) back into it, feeds
per-kernel latency histograms, and — when given an enabled
:class:`repro.obs.Tracer` — emits the run → stage → task-chunk span
tree with fault retries, slowdowns, and pool rebuilds attached as span
events.  With the default disabled tracer every trace call is a single
attribute test, keeping untraced runs at baseline cost.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.exec.backends import ExecutionBackend, SerialBackend
from repro.exec.metrics import RunMetrics
from repro.exec.stage import Stage, StageContext
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import NULL_TRACER, Tracer


class PipelineExecutor:
    """Runs stages in order against a shared context."""

    def __init__(
        self,
        stages: Sequence[Stage],
        backend: ExecutionBackend | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._stages = list(stages)
        self._backend = backend or SerialBackend()
        self._tracer = tracer or NULL_TRACER

    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    def execute(self, ctx: StageContext) -> RunMetrics:
        backend = self._backend
        tracer = self._tracer
        registry = set_registry(MetricsRegistry())
        metrics = RunMetrics(
            backend=backend.name, jobs=backend.jobs, chunk_size=backend.chunk_size
        )
        run_start = time.perf_counter()
        with tracer.span(
            "run", category="run", backend=backend.name, jobs=backend.jobs
        ):
            backend.start(ctx.inputs, ctx.config)
            try:
                for stage in self._stages:
                    with tracer.span(
                        stage.name, category="stage", parallel=stage.parallel
                    ):
                        stage_start = time.perf_counter()
                        stats = stage.run(ctx, backend)
                        wall = time.perf_counter() - stage_start
                        events = backend.pop_events()
                        self._reduce_task_events(events, registry, tracer)
                        metrics.add_stage(stage.name, wall, stats, events, stage.parallel)
                        for event in backend.pop_retry_events():
                            tracer.event(
                                event.kind, kernel=event.kernel, attempt=event.attempt
                            )
                            if event.kind == "slow":
                                ctx.quality.worker_slowdowns += 1
                            else:
                                ctx.quality.record_retry(event.kind)
            finally:
                backend.close()
        metrics.wall_seconds = time.perf_counter() - run_start
        metrics.data_quality = ctx.quality.to_dict()
        metrics.metrics = registry.snapshot()
        return metrics

    @staticmethod
    def _reduce_task_events(
        events: list, registry: MetricsRegistry, tracer: Tracer
    ) -> None:
        """Fold chunk observability payloads into the run's registry/trace."""
        for event in events:
            if event.kernel:
                registry.observe(f"kernel.{event.kernel}.seconds", event.seconds)
            if event.obs is None:
                continue
            chunk_start, chunk_end, snapshot = event.obs
            if snapshot is not None:
                registry.merge(snapshot)
            if tracer.enabled:
                tracer.add_task_span(
                    f"chunk:{event.kernel}",
                    chunk_start,
                    chunk_end,
                    event.pid,
                    items=event.items,
                )
