"""The executor: drive a stage list over a context, measuring as it goes.

``PipelineExecutor`` owns the backend lifecycle (start before the first
stage, close after the last, even on failure) and produces one
:class:`RunMetrics` per execution.  It is deliberately ignorant of what
the stages compute — the same executor runs the hijack funnel today and
any other staged analysis tomorrow.

It is also the run's observability reducer: it installs a fresh
:class:`repro.obs.MetricsRegistry` per run, folds worker-side metric
snapshots (riding the ``TaskEvent`` return path) back into it, feeds
per-kernel latency histograms, and — when given an enabled
:class:`repro.obs.Tracer` — emits the run → stage → task-chunk span
tree with fault retries, slowdowns, and pool rebuilds attached as span
events.  With the default disabled tracer every trace call is a single
attribute test, keeping untraced runs at baseline cost.

Given a :class:`repro.cache.StageCache` plus the run's
:class:`repro.cache.RunKey`, the executor probes the cache before each
cacheable stage (one whose ``Stage.products`` is non-empty): a hit
restores the stage's products onto the context without running any
kernels; a miss runs the stage and stores its products.  Probe traffic
is counted in the run's metrics registry (``cache.hits`` /
``cache.misses`` / ``cache.stores`` / ``cache.bytes_*``) and summarized
in the manifest's ``cache`` section.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

from repro.exec.backends import ExecutionBackend, SerialBackend
from repro.exec.metrics import RunMetrics
from repro.exec.stage import Stage, StageContext
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:
    from repro.cache.fingerprint import RunKey
    from repro.cache.store import StageCache


class PipelineExecutor:
    """Runs stages in order against a shared context."""

    def __init__(
        self,
        stages: Sequence[Stage],
        backend: ExecutionBackend | None = None,
        tracer: Tracer | None = None,
        cache: StageCache | None = None,
        run_key: RunKey | None = None,
    ) -> None:
        self._stages = list(stages)
        self._backend = backend or SerialBackend()
        self._tracer = tracer or NULL_TRACER
        self._cache = cache if run_key is not None else None
        self._run_key = run_key if cache is not None else None

    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    def execute(self, ctx: StageContext) -> RunMetrics:
        backend = self._backend
        tracer = self._tracer
        cache = self._cache
        registry = set_registry(MetricsRegistry())
        metrics = RunMetrics(
            backend=backend.name, jobs=backend.jobs, chunk_size=backend.chunk_size
        )
        tally = {
            "hits": 0, "misses": 0, "stores": 0,
            "bytes_read": 0, "bytes_written": 0,
        }
        # The fingerprint chain: (name, cache_version, config_deps) of
        # every stage so far.  Uncacheable stages still extend it —
        # their code shapes downstream products just the same.
        chain: list[tuple[str, int, tuple[str, ...] | None]] = []
        run_start = time.perf_counter()
        with tracer.span(
            "run", category="run", backend=backend.name, jobs=backend.jobs
        ):
            backend.start(ctx.inputs, ctx.config)
            try:
                for stage in self._stages:
                    with tracer.span(
                        stage.name, category="stage", parallel=stage.parallel
                    ):
                        stage_start = time.perf_counter()
                        fingerprint = None
                        if cache is not None:
                            chain.append(
                                (stage.name, stage.cache_version, stage.config_deps)
                            )
                            if stage.products:
                                fingerprint = self._probe(
                                    cache, chain, stage, ctx, metrics,
                                    registry, tracer, tally, stage_start,
                                )
                                if fingerprint is None:
                                    continue  # cache hit, stage satisfied
                        stats = stage.run(ctx, backend)
                        wall = time.perf_counter() - stage_start
                        events = backend.pop_events()
                        self._reduce_task_events(events, registry, tracer)
                        metrics.add_stage(stage.name, wall, stats, events, stage.parallel)
                        for event in backend.pop_retry_events():
                            tracer.event(
                                event.kind, kernel=event.kernel, attempt=event.attempt
                            )
                            if event.kind == "slow":
                                ctx.quality.worker_slowdowns += 1
                            else:
                                ctx.quality.record_retry(event.kind)
                        if fingerprint is not None:
                            products = stage.cache_products(ctx)
                            nbytes = cache.put(
                                fingerprint, stage.name, stats, products
                            )
                            # Undo any stripping cache_products performed
                            # (the mapping shares objects with the ctx).
                            stage.restore_products(ctx, products)
                            registry.inc("cache.stores")
                            registry.inc("cache.bytes_written", nbytes)
                            tally["stores"] += 1
                            tally["bytes_written"] += nbytes
            finally:
                backend.close()
        metrics.wall_seconds = time.perf_counter() - run_start
        metrics.data_quality = ctx.quality.to_dict()
        if cache is not None:
            metrics.cache = {
                "enabled": True,
                "dir": str(cache.root),
                **tally,
            }
        metrics.metrics = registry.snapshot()
        return metrics

    def _probe(
        self, cache, chain, stage, ctx, metrics, registry, tracer, tally,
        stage_start,
    ) -> str | None:
        """Try to satisfy a cacheable stage from the cache.

        Returns the stage's fingerprint on a miss (the caller stores the
        freshly computed products under it) or None on a hit (the stage
        is already satisfied and must be skipped).
        """
        from repro.cache.fingerprint import stage_fingerprint

        fingerprint = stage_fingerprint(self._run_key, chain)
        entry = cache.get(fingerprint)
        if entry is None:
            registry.inc("cache.misses")
            tally["misses"] += 1
            return fingerprint
        stage.restore_products(ctx, entry.products)
        registry.inc("cache.hits")
        registry.inc("cache.bytes_read", entry.nbytes)
        tally["hits"] += 1
        tally["bytes_read"] += entry.nbytes
        tracer.event("cache_hit", stage=stage.name, fingerprint=fingerprint)
        wall = time.perf_counter() - stage_start
        metrics.add_stage(
            stage.name, wall, entry.stats, [], stage.parallel, cached=True
        )
        return None

    @staticmethod
    def _reduce_task_events(
        events: list, registry: MetricsRegistry, tracer: Tracer
    ) -> None:
        """Fold chunk observability payloads into the run's registry/trace."""
        for event in events:
            if event.kernel:
                registry.observe(f"kernel.{event.kernel}.seconds", event.seconds)
            if event.obs is None:
                continue
            chunk_start, chunk_end, snapshot = event.obs
            if snapshot is not None:
                registry.merge(snapshot)
            if tracer.enabled:
                tracer.add_task_span(
                    f"chunk:{event.kernel}",
                    chunk_start,
                    chunk_end,
                    event.pid,
                    items=event.items,
                )
