"""Per-stage accounting and the JSON run manifest.

Every pipeline run — serial or parallel — produces a :class:`RunMetrics`
recording, for each stage: wall time, input/output cardinalities (the
funnel delta), how many worker tasks ran, how many distinct workers they
landed on, and utilization (busy worker-seconds over the jobs × wall
budget).  The manifest serializes to JSON so runs can be compared across
machines and job counts, and renders as an aligned table for the
``repro-hunt profile`` view.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

MANIFEST_SCHEMA = "repro.exec.run-manifest/6"

#: Older manifests still load: /1 lacks ``data_quality``, /2 lacks the
#: ``metrics`` registry section, /3 lacks the ``cache`` section and the
#: per-stage ``cached`` flag, /4 lacks the run-level and per-stage
#: ``memory`` sections (peak RSS + optional tracemalloc deltas), /5
#: lacks the ``epoch`` section (incremental-run accounting).
_READABLE_SCHEMAS = frozenset(
    {
        MANIFEST_SCHEMA,
        "repro.exec.run-manifest/1",
        "repro.exec.run-manifest/2",
        "repro.exec.run-manifest/3",
        "repro.exec.run-manifest/4",
        "repro.exec.run-manifest/5",
    }
)


@dataclass(frozen=True, slots=True)
class TaskEvent:
    """One dispatched chunk of work, as observed by the backend.

    ``obs`` is the chunk's observability payload off the kernel return
    path — ``(start, end, metrics_snapshot | None)`` with perf-counter
    timestamps measured inside the executing process — consumed by the
    executor for trace task-spans, per-kernel latency histograms, and
    the worker-metrics merge.  It never reaches the manifest directly.
    """

    pid: int
    seconds: float
    items: int
    kernel: str = ""
    obs: tuple | None = None


@dataclass(frozen=True, slots=True)
class RetryEvent:
    """One fault the backend absorbed instead of aborting the run.

    ``kind`` is ``"crash"`` (a worker task raised an injected crash and
    was retried), ``"pool_rebuild"`` (the process pool broke and was
    rebuilt before resubmission), or ``"slow"`` (an injected slowdown —
    recorded, not retried).
    """

    kernel: str
    kind: str
    attempt: int


@dataclass
class StageStats:
    """What a stage reports about its own funnel step."""

    n_in: int
    n_out: int
    detail: dict[str, Any] = field(default_factory=dict)


@dataclass
class StageMetrics:
    """Everything measured about one stage of one run."""

    name: str
    wall_seconds: float
    n_in: int
    n_out: int
    parallel: bool
    tasks: int
    workers_used: int
    busy_seconds: float
    utilization: float
    detail: dict[str, Any] = field(default_factory=dict)
    #: True when the stage was satisfied from the stage cache (no
    #: kernels ran; wall time is the entry load).
    cached: bool = False
    #: Stage-boundary memory sample (``peak_rss_bytes`` — the process
    #: high-water mark after the stage — plus
    #: ``tracemalloc_delta_bytes`` / ``tracemalloc_peak_bytes`` when
    #: allocation tracing was on); None for manifests before schema /5.
    memory: dict[str, Any] | None = None

    @property
    def funnel_delta(self) -> int:
        """How much the funnel narrowed (negative when a stage fans out)."""
        return self.n_in - self.n_out

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "wall_seconds": round(self.wall_seconds, 6),
            "n_in": self.n_in,
            "n_out": self.n_out,
            "funnel_delta": self.funnel_delta,
            "parallel": self.parallel,
            "tasks": self.tasks,
            "workers_used": self.workers_used,
            "busy_seconds": round(self.busy_seconds, 6),
            "utilization": round(self.utilization, 4),
            "cached": self.cached,
            "memory": dict(self.memory) if self.memory is not None else None,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> StageMetrics:
        return cls(
            name=data["name"],
            wall_seconds=data["wall_seconds"],
            n_in=data["n_in"],
            n_out=data["n_out"],
            parallel=data["parallel"],
            tasks=data["tasks"],
            workers_used=data["workers_used"],
            busy_seconds=data["busy_seconds"],
            utilization=data["utilization"],
            cached=data.get("cached", False),
            memory=data.get("memory"),
            detail=dict(data.get("detail", {})),
        )


@dataclass
class RunMetrics:
    """One pipeline run's complete accounting."""

    backend: str
    jobs: int
    chunk_size: int | None = None
    wall_seconds: float = 0.0
    stages: list[StageMetrics] = field(default_factory=list)
    funnel: dict[str, int] = field(default_factory=dict)
    #: The run's DataQuality ledger (``DataQuality.to_dict()`` shape);
    #: None for manifests written before schema /2.
    data_quality: dict[str, Any] | None = None
    #: The merged metrics-registry snapshot
    #: (``MetricsRegistry.snapshot()`` shape); None for manifests
    #: written before schema /3.
    metrics: dict[str, Any] | None = None
    #: The run's stage-cache accounting (hits/misses/stores/bytes plus
    #: the cache directory); None when caching was disabled or for
    #: manifests written before schema /4.
    cache: dict[str, Any] | None = None
    #: Run-level memory accounting (``peak_rss_bytes`` high-water mark,
    #: ``tracemalloc`` flag, and final tracemalloc figures when
    #: allocation tracing was on); None for manifests before schema /5.
    memory: dict[str, Any] | None = None
    #: Incremental-epoch accounting (delta identity, dirty-set counts,
    #: domains reused vs recomputed — the shape ``run_epoch`` attaches);
    #: None for ordinary full runs and manifests before schema /6.
    epoch: dict[str, Any] | None = None

    def add_stage(
        self,
        name: str,
        wall_seconds: float,
        stats: StageStats,
        events: list[TaskEvent],
        parallel: bool,
        cached: bool = False,
        memory: dict[str, Any] | None = None,
    ) -> StageMetrics:
        busy = sum(e.seconds for e in events)
        # Utilization is busy time over the stage's *actual* worker-
        # second budget: a serial stage only ever had one process to
        # keep busy, so charging it jobs × wall would cap it at 1/jobs.
        # A cache-satisfied stage ran no kernels at all — its wall time
        # is the entry load — so it reports zero utilization instead of
        # a load-time/wall-time ratio that would pollute the figure.
        budget = (self.jobs if parallel else 1) * wall_seconds
        stage = StageMetrics(
            name=name,
            wall_seconds=wall_seconds,
            n_in=stats.n_in,
            n_out=stats.n_out,
            parallel=parallel,
            tasks=len(events),
            workers_used=len({e.pid for e in events}),
            busy_seconds=0.0 if cached else busy,
            utilization=0.0 if cached else (busy / budget) if budget > 0 else 0.0,
            cached=cached,
            memory=memory,
            detail=dict(stats.detail),
        )
        self.stages.append(stage)
        return stage

    def stage(self, name: str) -> StageMetrics | None:
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "backend": self.backend,
            "jobs": self.jobs,
            "chunk_size": self.chunk_size,
            "wall_seconds": round(self.wall_seconds, 6),
            "stages": [stage.to_dict() for stage in self.stages],
            "funnel": dict(self.funnel),
            "data_quality": self.data_quality,
            "metrics": self.metrics,
            "cache": self.cache,
            "memory": self.memory,
            "epoch": self.epoch,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> RunMetrics:
        if data.get("schema") not in _READABLE_SCHEMAS:
            raise ValueError(
                f"unsupported manifest schema {data.get('schema')!r} "
                f"(expected one of {sorted(_READABLE_SCHEMAS)})"
            )
        return cls(
            backend=data["backend"],
            jobs=data["jobs"],
            chunk_size=data.get("chunk_size"),
            wall_seconds=data["wall_seconds"],
            stages=[StageMetrics.from_dict(s) for s in data["stages"]],
            funnel=dict(data.get("funnel", {})),
            data_quality=data.get("data_quality"),
            metrics=data.get("metrics"),
            cache=data.get("cache"),
            memory=data.get("memory"),
            epoch=data.get("epoch"),
        )

    def write(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def read(cls, path: str | Path) -> RunMetrics:
        return cls.from_dict(json.loads(Path(path).read_text()))


def _mib(value: Any) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    return f"{value / (1024 * 1024):.1f}M"


def format_run_metrics(metrics: RunMetrics) -> str:
    """Render a run manifest as the aligned per-stage profile table.

    Manifests carrying per-stage memory samples (schema /5) gain an
    ``rss`` column — the process high-water mark after the stage — and,
    when allocation tracing was on, an ``alloc`` column with the stage's
    tracemalloc delta.  Older manifests render exactly as before.
    """
    with_rss = any(s.memory for s in metrics.stages)
    with_alloc = any(
        s.memory and "tracemalloc_delta_bytes" in s.memory for s in metrics.stages
    )
    header = (
        f"{'stage':<16} {'wall':>9} {'in':>8} {'out':>8} {'delta':>8} "
        f"{'tasks':>6} {'workers':>8} {'util':>7}"
    )
    if with_rss:
        header += f" {'rss':>9}"
    if with_alloc:
        header += f" {'alloc':>10}"
    chunk_size = "auto" if metrics.chunk_size is None else str(metrics.chunk_size)
    lines = [
        f"run profile: backend={metrics.backend} jobs={metrics.jobs} "
        f"chunk_size={chunk_size} wall={metrics.wall_seconds:.3f}s",
        header,
        "-" * len(header),
    ]
    for stage in metrics.stages:
        # A cache-satisfied stage ran no kernels; its utilization is a
        # meaningless 0/0, so the column says what actually happened.
        util = f"{'cached':>6}" if stage.cached else f"{stage.utilization:>6.1%}"
        line = (
            f"{stage.name:<16} {stage.wall_seconds * 1e3:>8.1f}ms "
            f"{stage.n_in:>8} {stage.n_out:>8} {stage.funnel_delta:>8} "
            f"{stage.tasks:>6} {stage.workers_used:>8} {util}"
        )
        memory = stage.memory or {}
        if with_rss:
            line += f" {_mib(memory.get('peak_rss_bytes')):>9}"
        if with_alloc:
            delta = memory.get("tracemalloc_delta_bytes")
            rendered = f"{delta / (1024 * 1024):+.1f}M" if delta is not None else "-"
            line += f" {rendered:>10}"
        lines.append(line)
    if metrics.memory:
        rss = _mib(metrics.memory.get("peak_rss_bytes"))
        traced = ""
        if metrics.memory.get("tracemalloc"):
            traced = (
                f", tracemalloc peak "
                f"{_mib(metrics.memory.get('tracemalloc_peak_bytes'))}"
            )
        lines.append(f"memory: peak rss {rss}{traced}")
    if metrics.cache:
        lines.append(
            f"cache: {metrics.cache.get('hits', 0)} hits, "
            f"{metrics.cache.get('misses', 0)} misses, "
            f"{metrics.cache.get('stores', 0)} stores "
            f"({metrics.cache.get('bytes_read', 0)}B read, "
            f"{metrics.cache.get('bytes_written', 0)}B written)"
        )
    if metrics.funnel:
        hijacked = metrics.funnel.get("n_hijacked")
        targeted = metrics.funnel.get("n_targeted")
        if hijacked is not None:
            lines.append(f"verdicts: {hijacked} hijacked, {targeted} targeted")
    if metrics.data_quality and metrics.data_quality.get("degraded"):
        workers = metrics.data_quality.get("workers", {})
        lines.append(
            "data quality: DEGRADED "
            f"(worker retries={workers.get('retries', 0)}, "
            f"pool rebuilds={workers.get('pool_rebuilds', 0)})"
        )
    return "\n".join(lines)
