"""Staged execution engine for the five-step pipeline.

The paper's funnel is a chain of stages over a shared context; this
package separates *what* each stage computes (``Stage`` implementations
live next to their domain logic in :mod:`repro.core.pipeline`) from
*how* the work is scheduled:

* ``stage`` — the :class:`Stage` protocol and the shared
  :class:`StageContext` every stage reads from and writes to.
* ``backends`` — pluggable schedulers: :class:`SerialBackend` runs
  kernels inline; :class:`ProcessPoolBackend` shards embarrassingly
  parallel work (deployment mapping, classification, inspection) across
  worker processes by domain hash.
* ``kernels`` — the picklable per-item work functions the backends
  dispatch, operating on worker-global pipeline inputs.
* ``executor`` — :class:`PipelineExecutor` drives the stage list and
  records :class:`RunMetrics`.
* ``metrics`` — per-stage wall time, cardinalities, worker utilization,
  and the JSON run-manifest round-trip.

Both backends are required to produce byte-identical pipeline reports;
``tests/test_exec.py`` enforces the equivalence across seeds.
"""

from repro.exec.backends import ExecutionBackend, ProcessPoolBackend, SerialBackend
from repro.exec.executor import PipelineExecutor
from repro.exec.metrics import (
    MANIFEST_SCHEMA,
    RetryEvent,
    RunMetrics,
    StageMetrics,
    StageStats,
    TaskEvent,
    format_run_metrics,
)
from repro.exec.stage import Stage, StageContext

__all__ = [
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "PipelineExecutor",
    "MANIFEST_SCHEMA",
    "RetryEvent",
    "RunMetrics",
    "StageMetrics",
    "StageStats",
    "TaskEvent",
    "format_run_metrics",
    "Stage",
    "StageContext",
]
