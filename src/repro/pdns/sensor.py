"""The sensor network: turns planned query days into observations.

For every planned (fqdn, day) pair the network decides — with its
coverage probability — whether monitored recursive resolvers saw queries
for the name that day, and if so resolves it a few times at random
instants through the real resolver, recording both the A answer and the
domain's NS delegation.  A hijack window of a few hours is captured only
when a sampled query instant lands inside it, which is exactly the
partial-visibility property the paper leans on.
"""

from __future__ import annotations

import random
from datetime import date, datetime, time, timedelta

from repro.dns.records import RRType
from repro.dns.resolver import RecursiveResolver
from repro.net.names import registered_domain
from repro.pdns.database import PassiveDNSDatabase
from repro.pdns.traffic import ObservationPlan


class SensorNetwork:
    """Samples resolutions according to an observation plan."""

    def __init__(
        self,
        resolver: RecursiveResolver,
        rng: random.Random,
        coverage: float = 0.85,
        queries_per_day: int = 3,
        dense_ignores_coverage: bool = True,
    ) -> None:
        """``dense_ignores_coverage=True`` (default) models DomainTools-
        grade visibility: a name under dense observation is always seen.
        Set it False to study degraded sensor networks, where even an
        actively-queried name is only observed with the coverage
        probability (the paper's §4.6 coverage limitation)."""
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("coverage must be a probability")
        if queries_per_day < 1:
            raise ValueError("queries_per_day must be >= 1")
        self._resolver = resolver
        self._rng = rng
        self._coverage = coverage
        self._queries_per_day = queries_per_day
        self._dense_ignores_coverage = dense_ignores_coverage

    def _query_instants(self, day: date, dense: bool) -> list[datetime]:
        base = datetime.combine(day, time(0, 0))
        if dense:
            # High query volume: samples every two hours around the clock.
            # Any resolution state lasting >= 2 hours on a dense day is
            # guaranteed to be observed.
            return [base + timedelta(hours=2 * k, minutes=30) for k in range(12)]
        return sorted(
            base + timedelta(seconds=self._rng.randrange(86_400))
            for _ in range(self._queries_per_day)
        )

    def observe_day(
        self, db: PassiveDNSDatabase, fqdn: str, day: date, dense: bool = False
    ) -> int:
        """Observe one (fqdn, day); returns number of rows recorded.

        Dense days (high real-world query volume) are always covered and
        sampled on a fixed two-hour grid; background days are covered with
        the network's coverage probability and a few random instants.
        """
        covered = dense and self._dense_ignores_coverage
        if not covered and self._rng.random() > self._coverage:
            return 0
        recorded = 0
        base = registered_domain(fqdn)
        for instant in self._query_instants(day, dense):
            resolution = self._resolver.resolve(fqdn, RRType.A, instant)
            if resolution.ok:
                for answer in resolution.answers:
                    db.add_observation(fqdn, RRType.A, answer, day)
                    recorded += 1
            # Monitored resolvers also expose the delegation they used.
            for ns in resolution.delegation or self._resolver.delegation_of(base, instant):
                db.add_observation(base, RRType.NS, ns, day)
                recorded += 1
        return recorded

    def run(self, db: PassiveDNSDatabase, plan: ObservationPlan) -> int:
        """Execute the whole plan; returns total rows recorded."""
        total = 0
        for fqdn in plan.fqdns():
            for day in plan.days_for(fqdn):
                total += self.observe_day(db, fqdn, day, dense=plan.is_dense(fqdn, day))
        return total
