"""Passive DNS substrate (DomainTools-style).

A sensor network observes a fraction of real resolutions — driven
through the same time-aware resolver the rest of the world uses — and a
collector aggregates them into the classic passive-DNS tuple: (rrname,
rrtype, rdata) with first-seen / last-seen timestamps and a hit count.
The database answers the inspection stage's forward queries ("what did
mail.mfa.gov.kg resolve to around the transient deployment?") and the
pivot stage's inverse queries ("which other domains ever resolved to
this attacker IP / were delegated to this rogue nameserver?").

Coverage is necessarily partial: names nobody queries on monitored
networks never appear, reproducing the paper's missing-corroboration
cases (the T1* rows of Table 2).
"""

from repro.pdns.database import PassiveDNSDatabase, PdnsRecord
from repro.pdns.sensor import SensorNetwork
from repro.pdns.traffic import ObservationPlan

__all__ = ["PassiveDNSDatabase", "PdnsRecord", "SensorNetwork", "ObservationPlan"]
