"""The aggregated passive-DNS database."""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta

from typing import TYPE_CHECKING

from repro.dns.records import RRType
from repro.net.names import public_suffix, registered_domain
from repro.net.timeline import DateInterval

if TYPE_CHECKING:
    from repro.pdns.table import PdnsTable


@dataclass(frozen=True, slots=True)
class PdnsRecord:
    """One aggregated (rrname, rrtype, rdata) observation row."""

    rrname: str
    rtype: RRType
    rdata: str
    first_seen: date
    last_seen: date
    count: int

    @property
    def span_days(self) -> int:
        return (self.last_seen - self.first_seen).days + 1

    def overlaps(self, interval: DateInterval) -> bool:
        return interval.overlaps(DateInterval(self.first_seen, self.last_seen))


class PassiveDNSDatabase:
    """Aggregation + query API over sensor observations."""

    def __init__(self) -> None:
        # (rrname, rtype, rdata) -> [first_seen, last_seen, count].
        # ``None`` marks a table-backed database whose row dicts have
        # not been hydrated yet (see :meth:`from_table`).
        self._rows: dict[tuple[str, RRType, str], list] | None = {}
        self._by_name: dict[str, set[tuple[str, RRType, str]]] = {}
        self._by_rdata: dict[str, set[tuple[str, RRType, str]]] = {}
        #: Columnar query path toggle; the linear reference stays behind
        #: it for the differential suites and perf baselines.
        self.use_table = True
        self._version = 0
        self._table: PdnsTable | None = None
        self._table_version = -1

    @classmethod
    def from_table(cls, table: PdnsTable) -> PassiveDNSDatabase:
        """Wrap a pre-built columnar table (segment-backed fast path).

        The table's row stream must already be canonical — written from
        :meth:`all_records` order — which every segment writer preserves.
        Row dicts hydrate lazily, only if a linear/pivot query or a
        derivation actually needs them.
        """
        database = cls()
        database._table = table
        database._table_version = database._version
        database._rows = None
        return database

    def _ensure_rows(self) -> None:
        """Hydrate the row dicts of a table-backed database on demand."""
        if self._rows is not None:
            return
        table = self._table
        assert table is not None
        rows: dict[tuple[str, RRType, str], list] = {}
        for row in range(len(table)):
            record = table.record(row)
            key = (record.rrname, record.rtype, record.rdata)
            rows[key] = [record.first_seen, record.last_seen, record.count]
            self._by_name.setdefault(record.rrname, set()).add(key)
            self._by_rdata.setdefault(record.rdata, set()).add(key)
        self._rows = rows

    @property
    def table(self) -> PdnsTable:
        """The columnar view, built lazily and rebuilt after mutation.

        The table is constructed from :meth:`all_records` — the
        canonical ``(rrname, rtype, rdata)`` order — so its row ids and
        pool ids are a pure function of the aggregated content, stable
        across processes and safe to reference from cache entries.
        """
        if self._table is None or self._table_version != self._version:
            from repro.pdns.table import PdnsTable

            self._table = PdnsTable.from_records(self.all_records())
            self._table_version = self._version
        return self._table

    def add_observation(self, rrname: str, rtype: RRType, rdata: str, day: date) -> None:
        """Fold one observed resolution into the aggregate."""
        rrname = rrname.lower().rstrip(".")
        rdata = rdata.lower().rstrip(".") if rtype is RRType.NS else rdata
        key = (rrname, rtype, rdata)
        self._ensure_rows()
        self._version += 1
        row = self._rows.get(key)
        if row is None:
            self._rows[key] = [day, day, 1]
            self._by_name.setdefault(rrname, set()).add(key)
            self._by_rdata.setdefault(rdata, set()).add(key)
        else:
            if day < row[0]:
                row[0] = day
            if day > row[1]:
                row[1] = day
            row[2] += 1

    def _materialize(self, key: tuple[str, RRType, str]) -> PdnsRecord:
        first, last, count = self._rows[key]
        return PdnsRecord(key[0], key[1], key[2], first, last, count)

    # -- forward queries ------------------------------------------------------

    def query_name(
        self,
        rrname: str,
        rtype: RRType | None = None,
        window: DateInterval | None = None,
    ) -> list[PdnsRecord]:
        """All aggregated rows for an exact rrname."""
        rrname = rrname.lower().rstrip(".")
        if self.use_table:
            table = self.table
            return [
                table.record(row)
                for row in table.query_name_rows(rrname, rtype, window)
            ]
        return self._query_name_linear(rrname, rtype, window)

    def _query_name_linear(
        self,
        rrname: str,
        rtype: RRType | None = None,
        window: DateInterval | None = None,
    ) -> list[PdnsRecord]:
        """Row-at-a-time reference for :meth:`query_name` (pre-lowered)."""
        self._ensure_rows()
        records = [self._materialize(k) for k in self._by_name.get(rrname, ())]
        if rtype is not None:
            records = [r for r in records if r.rtype is rtype]
        if window is not None:
            records = [r for r in records if r.overlaps(window)]
        records.sort(key=lambda r: (r.first_seen, r.rdata))
        return records

    def query_domain(
        self, domain: str, window: DateInterval | None = None
    ) -> list[PdnsRecord]:
        """All rows for any rrname under the registered domain."""
        base = registered_domain(domain)
        # The CSR index buckets by each rrname's registered domain, which
        # only matches plain suffix semantics when the queried base is a
        # registrable domain itself; a bare public suffix falls back to
        # the linear reference.
        if not self.use_table or public_suffix(base) == base:
            return self._query_domain_linear(base, window)
        table = self.table
        rows = table.query_domain_rows(base, window)
        if table.irregular_rows:
            # Owner names the bucketing could not place (no parseable
            # registered domain) still suffix-match the legacy way.
            suffix = "." + base
            extra = [
                row
                for row in table._window_filter(table.irregular_rows, window)
                if table.rrnames[table.rrname_id[row]] == base
                or table.rrnames[table.rrname_id[row]].endswith(suffix)
            ]
            if extra:
                records = [table.record(row) for row in rows + extra]
                records.sort(key=lambda r: (r.rrname, r.first_seen, r.rdata))
                return records
        return [table.record(row) for row in rows]

    def _query_domain_linear(
        self, base: str, window: DateInterval | None = None
    ) -> list[PdnsRecord]:
        """Row-at-a-time reference for :meth:`query_domain`."""
        self._ensure_rows()
        records: list[PdnsRecord] = []
        for rrname, keys in self._by_name.items():
            if rrname == base or rrname.endswith("." + base):
                records.extend(self._materialize(k) for k in keys)
        if window is not None:
            records = [r for r in records if r.overlaps(window)]
        records.sort(key=lambda r: (r.rrname, r.first_seen, r.rdata))
        return records

    def a_history(self, fqdn: str, window: DateInterval | None = None) -> list[PdnsRecord]:
        return self.query_name(fqdn, RRType.A, window)

    def ns_history(self, domain: str, window: DateInterval | None = None) -> list[PdnsRecord]:
        """NS rows observed for the registered domain."""
        return self.query_name(registered_domain(domain), RRType.NS, window)

    # -- inverse (pivot) queries ----------------------------------------------

    def query_rdata(
        self, rdata: str, rtype: RRType | None = None, window: DateInterval | None = None
    ) -> list[PdnsRecord]:
        """All rows whose rdata equals ``rdata`` (IP or NS hostname)."""
        rdata_key = rdata.lower().rstrip(".")
        self._ensure_rows()
        keys = set(self._by_rdata.get(rdata_key, ()))
        if rtype is not RRType.NS:
            keys |= self._by_rdata.get(rdata, set())
        records = [self._materialize(k) for k in keys]
        if rtype is not None:
            records = [r for r in records if r.rtype is rtype]
        if window is not None:
            records = [r for r in records if r.overlaps(window)]
        records.sort(key=lambda r: (r.rrname, r.first_seen))
        return records

    def domains_resolving_to(self, ip: str, window: DateInterval | None = None) -> set[str]:
        """Registered domains with any name that resolved to ``ip``."""
        return {
            registered_domain(r.rrname)
            for r in self.query_rdata(ip, RRType.A, window)
        }

    def domains_delegated_to(self, ns_fqdn: str, window: DateInterval | None = None) -> set[str]:
        """Registered domains ever observed delegated to ``ns_fqdn``."""
        return {
            registered_domain(r.rrname)
            for r in self.query_rdata(ns_fqdn, RRType.NS, window)
        }

    def _insert_row(self, key: tuple[str, RRType, str], first: date, last: date, count: int) -> None:
        """Install one aggregated row directly, maintaining the indexes."""
        rrname, _rtype, rdata = key
        self._version += 1
        self._rows[key] = [first, last, count]
        self._by_name.setdefault(rrname, set()).add(key)
        self._by_rdata.setdefault(rdata, set()).add(key)

    def without_windows(self, blackouts: list[DateInterval]) -> PassiveDNSDatabase:
        """Derive the database a sensor network dark during ``blackouts``
        would have aggregated.

        Rows wholly inside a blackout vanish; rows straddling one keep
        their visible span with ``first_seen``/``last_seen`` pulled out
        of the dark ranges and their count scaled to the visible days
        (observations inside a window were never received).  The closed
        intervals must all have an end date.
        """
        windows = [w for w in blackouts if w.end is not None]
        self._ensure_rows()
        derived = PassiveDNSDatabase()
        if not windows:
            for key, (first, last, count) in self._rows.items():
                derived._insert_row(key, first, last, count)
            return derived

        def covered(day: date) -> DateInterval | None:
            for window in windows:
                if window.contains(day):
                    return window
            return None

        for key, (first, last, count) in self._rows.items():
            new_first, new_last = first, last
            while (window := covered(new_first)) is not None and new_first <= last:
                new_first = window.end + timedelta(days=1)
            if new_first > last:
                continue  # the whole row fell inside blackouts
            while (window := covered(new_last)) is not None and new_last >= new_first:
                new_last = window.start - timedelta(days=1)
            if new_last < new_first:
                continue
            span = (last - first).days + 1
            visible = (new_last - new_first).days + 1
            for window in windows:
                clipped = window.clipped(new_first, new_last)
                if clipped is not None:
                    visible -= clipped.days
            visible = max(1, visible)
            derived._insert_row(key, new_first, new_last, max(1, count * visible // span))
        return derived

    def all_records(self) -> list[PdnsRecord]:
        """Every aggregated row, in (rrname, rtype, rdata) order."""
        if self._rows is None:
            # Table-backed: the row stream already is the canonical
            # order, so the walk needs no hydrated dicts.
            table = self._table
            return [table.record(row) for row in range(len(table))]
        keys = sorted(self._rows, key=lambda k: (k[0], k[1].value, k[2]))
        return [self._materialize(k) for k in keys]

    def __getstate__(self) -> dict:
        # The columnar view never travels: its row stream is canonical,
        # so a worker rebuilding it lazily interns identical ids — and
        # the payload stays one copy of the aggregates, not two.
        state = self.__dict__.copy()
        if state["_rows"] is not None:
            state["_table"] = None
            state["_table_version"] = -1
        return state

    def __len__(self) -> int:
        if self._rows is None:
            return len(self._table)
        return len(self._rows)
