"""Columnar struct-of-arrays storage for aggregated passive-DNS rows.

The paper's step 4 inspects shortlisted transients against Farsight
SIE-scale passive DNS — billions of ``(rrname, rrtype, rdata)``
aggregates.  :class:`PdnsTable` mirrors :class:`repro.scan.table.ScanTable`
for that channel: one typed-array column per field (first/last-seen
ordinals, observation counts, an rrtype code) plus first-seen-order
interned pools for the repeated strings (owner names, rdata), so pool
ids are a pure function of the row stream and safe to reference from
cache entries and worker results.

Two CSR-style indexes sit on top of the columns:

* a per-owner-name index (``a_history``/``ns_history`` lookups), each
  name's rows pre-sorted by ``(first_seen, rdata, rrtype)``;
* a per-registered-domain index (``query_domain`` suffix walks), each
  base's rows pre-sorted by ``(rrname, first_seen, rdata, rrtype)`` —
  the exact order the row-at-a-time reference produces.

Owner names that have no well-formed registered domain (so the suffix
bucketing cannot place them) are kept aside in ``irregular_rows`` and
linearly merged by the database front door, preserving the legacy
suffix-match semantics byte for byte.

Rows are materialized back into :class:`~repro.pdns.database.PdnsRecord`
dataclasses lazily and memoized, so repeated inspection queries touch
each row object at most once.
"""

from __future__ import annotations

from array import array
from datetime import date
from typing import TYPE_CHECKING, Iterable

from repro.dns.records import RRType
from repro.net.names import registered_domain
from repro.scan.table import _Interner

if TYPE_CHECKING:
    from repro.net.timeline import DateInterval
    from repro.pdns.database import PdnsRecord

#: Canonical rrtype code table: the ``rtype_code`` column indexes this
#: tuple, so codes are a pure function of the enum declaration order.
RRTYPES: tuple[RRType, ...] = tuple(RRType)
_RT_CODE = {rtype: code for code, rtype in enumerate(RRTYPES)}

#: Per-row columns, in declaration order (all aligned, one entry per row).
_ROW_COLUMNS = ("rrname_id", "rtype_code", "rdata_id", "first_ord", "last_ord", "count")

#: Intern pools shared between a table and everything derived from it.
_POOLS = ("rrnames", "rdatas")

#: id columns and the pools they index, for ``select`` re-interning.
_ID_COLUMNS = (("rrname_id", "rrnames"), ("rdata_id", "rdatas"))


class PdnsTable:
    """Struct-of-arrays passive-DNS store with interned value pools."""

    def __init__(self) -> None:
        # -- per-row columns -------------------------------------------------
        self.rrname_id = array("I")
        self.rtype_code = array("B")
        self.rdata_id = array("I")
        self.first_ord = array("i")
        self.last_ord = array("i")
        self.count = array("Q")
        # -- interned pools (id -> value, first-seen order) ------------------
        self.rrnames: list[str] = []
        self.rdatas: list[str] = []
        # -- per-owner-name CSR index ----------------------------------------
        self.names: tuple[str, ...] = ()
        self.name_rows = array("I")
        self.name_off = array("I", [0])
        # -- per-registered-domain CSR index ---------------------------------
        self.domains: tuple[str, ...] = ()
        self.dom_rows = array("I")
        self.dom_off = array("I", [0])
        #: Rows whose owner name has no parseable registered domain; the
        #: database merges these linearly into suffix queries.
        self.irregular_rows: tuple[int, ...] = ()
        # -- lazy decode state (never pickled) -------------------------------
        self._name_index: dict[str, int] = {}
        self._dom_index: dict[str, int] = {}
        self._rec_cache: list[PdnsRecord | None] = []
        self._row_index: dict[tuple[str, RRType, str], int] | None = None
        self._date_cache: dict[int, date] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[PdnsRecord]) -> PdnsTable:
        """Build from a record stream (canonically: ``all_records()``
        order, which makes pool ids a pure function of content)."""
        table = cls()
        builder = _PdnsTableBuilder(table)
        for record in records:
            builder.append_record(record)
        builder.finish()
        return table

    def __len__(self) -> int:
        return len(self.first_ord)

    # -- row materialization -------------------------------------------------

    def record(self, row: int) -> PdnsRecord:
        """The row as a :class:`PdnsRecord`, memoized per row."""
        cached = self._rec_cache[row]
        if cached is None:
            from repro.pdns.database import PdnsRecord

            cached = PdnsRecord(
                rrname=self.rrnames[self.rrname_id[row]],
                rtype=RRTYPES[self.rtype_code[row]],
                rdata=self.rdatas[self.rdata_id[row]],
                first_seen=self.interned_date(self.first_ord[row]),
                last_seen=self.interned_date(self.last_ord[row]),
                count=self.count[row],
            )
            self._rec_cache[row] = cached
        return cached

    def interned_date(self, ordinal: int) -> date:
        cached = self._date_cache.get(ordinal)
        if cached is None:
            cached = date.fromordinal(ordinal)
            self._date_cache[ordinal] = cached
        return cached

    def row_of(self, rrname: str, rtype: RRType, rdata: str) -> int:
        """The row id of one aggregate — the wire-form reference used by
        the inspection stage's encoded evidence."""
        index = self._row_index
        if index is None:
            index = {}
            rrnames, rdatas = self.rrnames, self.rdatas
            for row in range(len(self.first_ord)):
                key = (
                    rrnames[self.rrname_id[row]],
                    RRTYPES[self.rtype_code[row]],
                    rdatas[self.rdata_id[row]],
                )
                index[key] = row
            self._row_index = index
        return index[(rrname, rtype, rdata)]

    # -- query kernels (row ids, pre-sorted like the legacy reference) -------

    def _window_filter(
        self, rows: Iterable[int], window: DateInterval | None
    ) -> list[int]:
        if window is None:
            return list(rows)
        start = window.start.toordinal()
        end = window.end.toordinal() if window.end is not None else None
        first, last = self.first_ord, self.last_ord
        return [
            row
            for row in rows
            if last[row] >= start and (end is None or first[row] <= end)
        ]

    def query_name_rows(
        self,
        rrname: str,
        rtype: RRType | None = None,
        window: DateInterval | None = None,
    ) -> list[int]:
        """Rows for one owner name, sorted ``(first_seen, rdata)``."""
        index = self._name_index.get(rrname)
        if index is None:
            return []
        lo, hi = self.name_off[index], self.name_off[index + 1]
        bucket = self.name_rows[lo:hi]
        if rtype is not None:
            code = _RT_CODE[rtype]
            rtypes = self.rtype_code
            bucket = [row for row in bucket if rtypes[row] == code]
        return self._window_filter(bucket, window)

    def query_domain_rows(
        self, base: str, window: DateInterval | None = None
    ) -> list[int]:
        """Rows under one registered domain (regular owner names only),
        sorted ``(rrname, first_seen, rdata)``."""
        index = self._dom_index.get(base)
        if index is None:
            return []
        lo, hi = self.dom_off[index], self.dom_off[index + 1]
        return self._window_filter(self.dom_rows[lo:hi], window)

    # -- canonical walks -----------------------------------------------------

    def row_dicts(self) -> Iterable[dict]:
        """Canonical value-space walk of every row, in row order."""
        for row in range(len(self.first_ord)):
            yield {
                "rrname": self.rrnames[self.rrname_id[row]],
                "rtype": RRTYPES[self.rtype_code[row]].value,
                "rdata": self.rdatas[self.rdata_id[row]],
                "first": self.first_ord[row],
                "last": self.last_ord[row],
                "count": self.count[row],
            }

    def column_bytes(self) -> int:
        """Bytes held by the typed-array columns (pools excluded)."""
        return sum(
            len(getattr(self, name)) * getattr(self, name).itemsize
            for name in _ROW_COLUMNS
        ) + sum(
            len(arr) * arr.itemsize
            for arr in (self.name_rows, self.name_off, self.dom_rows, self.dom_off)
        )

    # -- derived tables ------------------------------------------------------

    def select(self, rows: Iterable[int]) -> PdnsTable:
        """A new table holding only ``rows``, pools re-interned.

        Ids are re-assigned in first-seen order over the surviving rows,
        so a derived (fault-degraded) table interns exactly like a table
        freshly built from the surviving records — the invariant that
        keeps pool ids safe to ship between processes and cache entries.
        """
        rows = list(rows)
        derived = PdnsTable()
        derived.rtype_code = array("B", (self.rtype_code[r] for r in rows))
        derived.first_ord = array("i", (self.first_ord[r] for r in rows))
        derived.last_ord = array("i", (self.last_ord[r] for r in rows))
        derived.count = array("Q", (self.count[r] for r in rows))
        for column_name, pool_name in _ID_COLUMNS:
            column = getattr(self, column_name)
            pool = getattr(self, pool_name)
            interner = _Interner()
            setattr(
                derived,
                column_name,
                array("I", (interner.intern(pool[column[r]]) for r in rows)),
            )
            setattr(derived, pool_name, interner.values)
        derived._rec_cache = [self._rec_cache[r] for r in rows]
        derived._build_index()
        return derived

    # -- index construction --------------------------------------------------

    def _build_index(self) -> None:
        n_rows = len(self.first_ord)
        if not self._rec_cache:
            self._rec_cache = [None] * n_rows
        # String-sort ranks, computed once per pool value: per-bucket row
        # sorts compare small ints instead of strings.
        name_rank = {
            ident: rank
            for rank, ident in enumerate(
                sorted(range(len(self.rrnames)), key=self.rrnames.__getitem__)
            )
        }
        rdata_rank = {
            ident: rank
            for rank, ident in enumerate(
                sorted(range(len(self.rdatas)), key=self.rdatas.__getitem__)
            )
        }
        # Registered domain of each distinct owner name (None: irregular).
        base_of: dict[int, str | None] = {}
        for ident, rrname in enumerate(self.rrnames):
            try:
                base_of[ident] = registered_domain(rrname)
            except ValueError:
                base_of[ident] = None

        name_buckets: dict[int, list[int]] = {}
        dom_buckets: dict[str, list[int]] = {}
        irregular: list[int] = []
        rrname_id = self.rrname_id
        for row in range(n_rows):
            ident = rrname_id[row]
            name_buckets.setdefault(ident, []).append(row)
            base = base_of[ident]
            if base is None:
                irregular.append(row)
            else:
                dom_buckets.setdefault(base, []).append(row)
        self.irregular_rows = tuple(irregular)

        first = self.first_ord
        rdata_id = self.rdata_id
        rtypes = self.rtype_code

        self.names = tuple(
            sorted(
                (self.rrnames[ident] for ident in name_buckets),
            )
        )
        self._name_index = {name: i for i, name in enumerate(self.names)}
        name_rows: list[int] = []
        name_off = array("I", [0])
        by_name = {self.rrnames[ident]: bucket for ident, bucket in name_buckets.items()}
        for name in self.names:
            bucket = by_name[name]
            bucket.sort(
                key=lambda r: (first[r], rdata_rank[rdata_id[r]], rtypes[r])
            )
            name_rows.extend(bucket)
            name_off.append(len(name_rows))
        self.name_rows = array("I", name_rows)
        self.name_off = name_off

        self.domains = tuple(sorted(dom_buckets))
        self._dom_index = {base: i for i, base in enumerate(self.domains)}
        dom_rows: list[int] = []
        dom_off = array("I", [0])
        for base in self.domains:
            bucket = dom_buckets[base]
            bucket.sort(
                key=lambda r: (
                    name_rank[rrname_id[r]],
                    first[r],
                    rdata_rank[rdata_id[r]],
                    rtypes[r],
                )
            )
            dom_rows.extend(bucket)
            dom_off.append(len(dom_rows))
        self.dom_rows = array("I", dom_rows)
        self.dom_off = dom_off

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_name_index"] = None
        state["_dom_index"] = None
        state["_rec_cache"] = None
        state["_row_index"] = None
        state["_date_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._name_index = {name: i for i, name in enumerate(self.names)}
        self._dom_index = {base: i for i, base in enumerate(self.domains)}
        self._rec_cache = [None] * len(self.first_ord)
        self._row_index = None
        self._date_cache = {}


class _PdnsTableBuilder:
    """Append-only builder: rows in, table with pools + indexes out."""

    def __init__(self, table: PdnsTable) -> None:
        self.table = table
        self._rrnames = _Interner()
        self._rdatas = _Interner()

    def append_record(self, record: PdnsRecord) -> None:
        self.append_row(
            record.rrname,
            record.rtype,
            record.rdata,
            record.first_seen.toordinal(),
            record.last_seen.toordinal(),
            record.count,
        )
        self.table._rec_cache.append(record)

    def append_row(
        self,
        rrname: str,
        rtype: RRType,
        rdata: str,
        first_ord: int,
        last_ord: int,
        count: int,
    ) -> None:
        table = self.table
        table.rrname_id.append(self._rrnames.intern(rrname))
        table.rtype_code.append(_RT_CODE[rtype])
        table.rdata_id.append(self._rdatas.intern(rdata))
        table.first_ord.append(first_ord)
        table.last_ord.append(last_ord)
        table.count.append(count)

    def finish(self) -> None:
        table = self.table
        table.rrnames = self._rrnames.values
        table.rdatas = self._rdatas.values
        table._build_index()
