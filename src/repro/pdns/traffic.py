"""Observation planning: which names get queried on which days.

DomainTools-style sensors only see names that are actively queried on
monitored networks.  The world builder translates "this domain is in
active use" into an :class:`ObservationPlan`: a weekly background of
query days per FQDN, densified around configuration-change boundaries
(sensors see *more* queries than we can afford to simulate; dense
sampling near events approximates that without resolving every name
every day).  Attack windows explicitly marked invisible get no extra
density — those become the paper's no-pDNS-corroboration cases.
"""

from __future__ import annotations

from datetime import date, timedelta

from repro.net.timeline import DateInterval, iter_days


class ObservationPlan:
    """fqdn → sorted set of days on which sensors may observe queries."""

    def __init__(self) -> None:
        self._days: dict[str, set[date]] = {}
        self._dense: dict[str, set[date]] = {}

    def add_background(
        self, fqdn: str, interval: DateInterval, every_days: int = 7
    ) -> None:
        """Sparse steady-state coverage for an actively used name."""
        if interval.end is None:
            raise ValueError("background coverage needs a bounded interval")
        if every_days < 1:
            raise ValueError("every_days must be >= 1")
        days = self._days.setdefault(fqdn.lower(), set())
        day = interval.start
        while day <= interval.end:
            days.add(day)
            day += timedelta(days=every_days)

    def add_dense_window(self, fqdn: str, center: date, radius_days: int = 10) -> None:
        """Daily, high-volume coverage around an event boundary.

        Dense days model what commercial pDNS really provides for an
        actively used name: enough query volume spread across the day
        that any resolution state lasting a couple of hours is observed.
        """
        days = self._days.setdefault(fqdn.lower(), set())
        dense = self._dense.setdefault(fqdn.lower(), set())
        for day in iter_days(center - timedelta(days=radius_days), center + timedelta(days=radius_days)):
            days.add(day)
            dense.add(day)

    def is_dense(self, fqdn: str, day: date) -> bool:
        return day in self._dense.get(fqdn.lower(), ())

    def days_for(self, fqdn: str) -> tuple[date, ...]:
        return tuple(sorted(self._days.get(fqdn.lower(), ())))

    def fqdns(self) -> tuple[str, ...]:
        return tuple(sorted(self._days))

    def merge(self, other: "ObservationPlan") -> None:
        for fqdn, days in other._days.items():
            self._days.setdefault(fqdn, set()).update(days)

    def __len__(self) -> int:
        return len(self._days)
