"""A TTL-honoring caching recursive resolver.

The pipeline itself consumes authoritative state, but the *victims'
users* sit behind caching resolvers — and caching stretches a hijack
beyond its window: an answer fetched at 06:59 from the rogue nameserver
keeps steering clients to the attacker until its TTL runs out, even
after the delegation has reverted.  This wrapper models that effect so
the impact analysis can quantify the TTL tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.dns.records import RRType
from repro.dns.resolver import RecursiveResolver, Resolution, ResolutionStatus

#: Default cache TTL applied to positive answers (seconds).
DEFAULT_TTL = 3600
#: Negative answers are cached briefly (RFC 2308 style).
NEGATIVE_TTL = 300


@dataclass
class _CacheEntry:
    resolution: Resolution
    expires: datetime
    hits: int = 0


class CachingResolver:
    """Wraps a :class:`RecursiveResolver` with a per-(name, type) cache.

    Queries must be issued in non-decreasing time order per resolver
    instance (a cache is a stateful artifact of one vantage point's
    query history).
    """

    def __init__(
        self,
        upstream: RecursiveResolver,
        ttl_seconds: int = DEFAULT_TTL,
        negative_ttl_seconds: int = NEGATIVE_TTL,
    ) -> None:
        if ttl_seconds <= 0 or negative_ttl_seconds <= 0:
            raise ValueError("TTLs must be positive")
        self._upstream = upstream
        self._ttl = timedelta(seconds=ttl_seconds)
        self._negative_ttl = timedelta(seconds=negative_ttl_seconds)
        self._cache: dict[tuple[str, RRType], _CacheEntry] = {}
        self._last_query: datetime | None = None
        self.hits = 0
        self.misses = 0

    def resolve(self, fqdn: str, rtype: RRType, at: datetime) -> Resolution:
        if self._last_query is not None and at < self._last_query:
            raise ValueError("cache queries must move forward in time")
        self._last_query = at
        key = (fqdn.lower().rstrip("."), rtype)
        entry = self._cache.get(key)
        if entry is not None and at < entry.expires:
            entry.hits += 1
            self.hits += 1
            return entry.resolution
        resolution = self._upstream.resolve(fqdn, rtype, at)
        self.misses += 1
        ttl = self._ttl if resolution.ok else self._negative_ttl
        self._cache[key] = _CacheEntry(resolution=resolution, expires=at + ttl)
        return resolution

    def resolve_a(self, fqdn: str, at: datetime) -> tuple[str, ...]:
        return self.resolve(fqdn, RRType.A, at).answers

    def flush(self) -> None:
        self._cache.clear()
        self._last_query = None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def poisoned_tail_seconds(
    upstream: RecursiveResolver,
    fqdn: str,
    attacker_ips: set[str],
    window_end: datetime,
    ttl_seconds: int = DEFAULT_TTL,
    probe_interval_seconds: int = 60,
) -> int:
    """How long after the hijack window a cache keeps serving the attacker.

    Simulates a resolver that cached the rogue answer at the last moment
    of the window, then probes it every ``probe_interval_seconds``.
    Returns the number of seconds past ``window_end`` during which the
    cached answer still pointed at attacker infrastructure.
    """
    cache = CachingResolver(upstream, ttl_seconds=ttl_seconds)
    last_in_window = window_end - timedelta(seconds=1)
    primed = cache.resolve(fqdn, RRType.A, last_in_window)
    if not set(primed.answers) & attacker_ips:
        return 0
    elapsed = 0
    probe = window_end
    while True:
        answers = cache.resolve_a(fqdn, probe)
        if not set(answers) & attacker_ips:
            return elapsed
        elapsed += probe_interval_seconds
        probe += timedelta(seconds=probe_interval_seconds)
        if elapsed > 10 * ttl_seconds:  # safety: cannot linger past TTL
            raise RuntimeError("cache never recovered; TTL logic broken")
