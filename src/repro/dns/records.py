"""DNS resource records."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class RRType(Enum):
    A = "A"
    NS = "NS"
    TXT = "TXT"
    CNAME = "CNAME"
    MX = "MX"
    SOA = "SOA"
    DS = "DS"


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """A single owner-name / type / rdata triple."""

    name: str
    rtype: RRType
    rdata: str
    ttl: int = 3600

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("record owner name must be non-empty")
        if not self.rdata:
            raise ValueError("record rdata must be non-empty")
        if self.ttl < 0:
            raise ValueError("TTL must be non-negative")

    def __str__(self) -> str:
        return f"{self.name} {self.ttl} IN {self.rtype.value} {self.rdata}"
