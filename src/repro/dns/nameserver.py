"""Authoritative nameserver hosts and the glue directory.

A :class:`NameserverHost` is a server (identified by the operator that
controls it) that serves zone data for whatever names are pointed at it.
The :class:`NameserverDirectory` plays the role of glue records: it maps
a nameserver's FQDN to the host object answering for it over time, so a
hijacker who registers ``ns1.kg-infocom.ru`` simply binds that name to a
host they control.
"""

from __future__ import annotations

from datetime import datetime

from repro.dns.records import RRType
from repro.dns.timelinemap import TimelineMap


class NameserverHost:
    """A server answering authoritatively from its record timeline."""

    def __init__(self, operator: str, ip: str | None = None) -> None:
        self.operator = operator
        self.ip = ip
        self._records: TimelineMap[tuple[str, RRType], tuple[str, ...]] = TimelineMap()
        self._signed_zones: TimelineMap[str, bool] = TimelineMap()

    def add_record(
        self,
        name: str,
        rtype: RRType,
        rdata: str | tuple[str, ...],
        start: datetime,
        end: datetime | None = None,
    ) -> None:
        """Serve ``rdata`` for ``(name, rtype)`` over ``[start, end)``."""
        values = (rdata,) if isinstance(rdata, str) else tuple(rdata)
        if not values:
            raise ValueError("rdata set must be non-empty")
        self._records.set((name.lower().rstrip("."), rtype), values, start, end)

    def answer(self, name: str, rtype: RRType, at: datetime) -> tuple[str, ...]:
        """Authoritative answer for ``(name, rtype)`` at instant ``at``.

        An empty tuple means NODATA/NXDOMAIN from this host.
        """
        values = self._records.at((name.lower().rstrip("."), rtype), at)
        return values or ()

    def record_changes(
        self, name: str, rtype: RRType, start: datetime, end: datetime
    ) -> list[tuple[datetime, tuple[str, ...]]]:
        """Observable answer changes in a window (for pDNS generation)."""
        return self._records.effective_changes(
            (name.lower().rstrip("."), rtype), start, end
        )

    def sign_zone(self, domain: str, start: datetime, end: datetime | None = None) -> None:
        """Mark the host as serving signed (DNSSEC) answers for ``domain``."""
        self._signed_zones.set(domain.lower(), True, start, end)

    def signs(self, domain: str, at: datetime) -> bool:
        return bool(self._signed_zones.at(domain.lower(), at))


class NameserverDirectory:
    """Glue: which host answers for a given nameserver FQDN over time."""

    def __init__(self) -> None:
        self._hosts: TimelineMap[str, NameserverHost] = TimelineMap()

    def bind(
        self,
        ns_fqdn: str,
        host: NameserverHost,
        start: datetime,
        end: datetime | None = None,
    ) -> None:
        self._hosts.set(ns_fqdn.lower().rstrip("."), host, start, end)

    def host_for(self, ns_fqdn: str, at: datetime) -> NameserverHost | None:
        return self._hosts.at(ns_fqdn.lower().rstrip("."), at)

    def __contains__(self, ns_fqdn: str) -> bool:
        return ns_fqdn.lower().rstrip(".") in self._hosts
