"""DNS ecosystem substrate.

Models the chain of authority a DNS infrastructure hijack subverts:
TLD registries hold delegations (NS records) that registrars update on
behalf of account holders; authoritative nameserver hosts serve the zone
data; a time-aware recursive resolver walks the chain exactly as it stood
at any instant of the study window.  Delegations and records are interval
timelines, so an attacker's few-hour hijack window is faithfully visible
to a resolution at 02:00 and invisible to the daily zone-file snapshot —
the observability asymmetry Section 5.3 of the paper measures.
"""

from repro.dns.records import RRType, ResourceRecord
from repro.dns.timelinemap import TimelineMap
from repro.dns.registry import Registry, ZoneSnapshot
from repro.dns.registrar import Account, Credential, Registrar, RegistrarError
from repro.dns.nameserver import NameserverDirectory, NameserverHost
from repro.dns.resolver import RecursiveResolver, Resolution, ResolutionStatus
from repro.dns.cache import CachingResolver, poisoned_tail_seconds
from repro.dns.dnssec import DnssecStatus, validate_chain
from repro.dns.zonearchive import DelegationChange, ZoneArchive

__all__ = [
    "CachingResolver",
    "poisoned_tail_seconds",
    "DelegationChange",
    "ZoneArchive",
    "RRType",
    "ResourceRecord",
    "TimelineMap",
    "Registry",
    "ZoneSnapshot",
    "Account",
    "Credential",
    "Registrar",
    "RegistrarError",
    "NameserverDirectory",
    "NameserverHost",
    "RecursiveResolver",
    "Resolution",
    "ResolutionStatus",
    "DnssecStatus",
    "validate_chain",
]
