"""The time-aware recursive resolver.

Walks the chain of authority exactly as it stood at a given instant:
registry delegation → glue (nameserver directory) → authoritative host →
answer.  Both the pDNS sensor network and the ACME domain-validation
check resolve through this object, which is what makes the attack's
causal chain real in the simulation: during a hijack window the CA's
DNS-01 check and a victim's mail client both land on attacker
infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from enum import Enum

from repro.dns.nameserver import NameserverDirectory
from repro.dns.records import RRType
from repro.dns.registry import Registry
from repro.net.names import public_suffix, registered_domain


class ResolutionStatus(Enum):
    OK = "ok"
    NXDOMAIN = "nxdomain"
    NODATA = "nodata"
    SERVFAIL = "servfail"


@dataclass(frozen=True, slots=True)
class Resolution:
    """The outcome of one recursive resolution."""

    fqdn: str
    rtype: RRType
    at: datetime
    status: ResolutionStatus
    answers: tuple[str, ...] = ()
    delegation: tuple[str, ...] = ()
    answering_ns: str | None = None

    @property
    def ok(self) -> bool:
        return self.status is ResolutionStatus.OK


class RecursiveResolver:
    """Recursive resolution over registries + glue + authoritative hosts."""

    def __init__(
        self,
        registries: list[Registry],
        directory: NameserverDirectory,
    ) -> None:
        # Keep the caller's list object: the world grows it lazily as new
        # TLD registries come into existence.
        self._registries = registries
        self._directory = directory

    def registry_for(self, domain: str) -> Registry | None:
        for registry in self._registries:
            if registry.administers(domain):
                return registry
        return None

    #: CNAME chains longer than this SERVFAIL (loop protection).
    MAX_CNAME_DEPTH = 8

    def resolve(
        self, fqdn: str, rtype: RRType, at: datetime, _depth: int = 0
    ) -> Resolution:
        """Resolve ``fqdn``/``rtype`` as the Internet stood at ``at``.

        CNAMEs are chased (bounded depth) for non-CNAME query types, as a
        recursive resolver would; the returned resolution carries the
        final target's answers with the original query name.
        """
        fqdn = fqdn.lower().rstrip(".")
        base = registered_domain(fqdn)
        registry = self.registry_for(base)
        if registry is None:
            return Resolution(fqdn, rtype, at, ResolutionStatus.SERVFAIL)

        if rtype is RRType.NS and fqdn == base:
            delegation = registry.delegation_at(base, at)
            if not delegation:
                return Resolution(fqdn, rtype, at, ResolutionStatus.NXDOMAIN)
            return Resolution(
                fqdn, rtype, at, ResolutionStatus.OK,
                answers=delegation, delegation=delegation,
            )

        delegation = registry.delegation_at(base, at)
        if not delegation:
            return Resolution(fqdn, rtype, at, ResolutionStatus.NXDOMAIN)

        # Try each delegated nameserver in order until one has a live host;
        # a resolver retries siblings on timeout the same way.
        for ns_fqdn in delegation:
            host = self._directory.host_for(ns_fqdn, at)
            if host is None:
                continue
            answers = host.answer(fqdn, rtype, at)
            if answers:
                return Resolution(
                    fqdn, rtype, at, ResolutionStatus.OK,
                    answers=answers, delegation=delegation, answering_ns=ns_fqdn,
                )
            # No direct data: chase a CNAME if one exists for the name.
            if rtype is not RRType.CNAME:
                cnames = host.answer(fqdn, RRType.CNAME, at)
                if cnames:
                    if _depth >= self.MAX_CNAME_DEPTH:
                        return Resolution(
                            fqdn, rtype, at, ResolutionStatus.SERVFAIL,
                            delegation=delegation, answering_ns=ns_fqdn,
                        )
                    chased = self.resolve(cnames[0], rtype, at, _depth=_depth + 1)
                    return Resolution(
                        fqdn, rtype, at, chased.status,
                        answers=chased.answers, delegation=delegation,
                        answering_ns=ns_fqdn,
                    )
            return Resolution(
                fqdn, rtype, at, ResolutionStatus.NODATA,
                delegation=delegation, answering_ns=ns_fqdn,
            )
        return Resolution(fqdn, rtype, at, ResolutionStatus.SERVFAIL, delegation=delegation)

    def resolve_a(self, fqdn: str, at: datetime) -> tuple[str, ...]:
        """Convenience: A-record answers (empty tuple on any failure)."""
        return self.resolve(fqdn, RRType.A, at).answers

    def delegation_of(self, domain: str, at: datetime) -> tuple[str, ...]:
        registry = self.registry_for(domain)
        if registry is None:
            return ()
        return registry.delegation_at(registered_domain(domain), at)

    def suffix_known(self, domain: str) -> bool:
        """Does any registry administer this domain's public suffix?"""
        suffix = public_suffix(domain)
        return any(suffix in r.suffixes for r in self._registries)
