"""DNSSEC chain validation (minimal model).

DNSSEC is of limited help against infrastructure hijacks because the
compromised authority can remove the DS records along with the NS
records (Section 2.2).  We model the chain at the granularity the paper
reasons about: a domain is SECURE when the registry publishes DS records
and the answering host signs the zone, BOGUS when DS exists but the host
does not sign (a hijack that forgot to strip DS), and INSECURE when no
DS is published — which is the state attackers induce.
"""

from __future__ import annotations

from datetime import datetime
from enum import Enum

from repro.dns.nameserver import NameserverDirectory
from repro.dns.registry import Registry
from repro.net.names import registered_domain


class DnssecStatus(Enum):
    SECURE = "secure"
    INSECURE = "insecure"
    BOGUS = "bogus"


def validate_chain(
    registry: Registry,
    directory: NameserverDirectory,
    domain: str,
    at: datetime,
) -> DnssecStatus:
    """Validate the DNSSEC chain for ``domain`` at instant ``at``."""
    base = registered_domain(domain)
    ds = registry.ds_at(base, at)
    if not ds:
        return DnssecStatus.INSECURE
    for ns_fqdn in registry.delegation_at(base, at):
        host = directory.host_for(ns_fqdn, at)
        if host is not None:
            return DnssecStatus.SECURE if host.signs(base, at) else DnssecStatus.BOGUS
    return DnssecStatus.BOGUS
