"""Interval timelines for DNS state.

Every piece of mutable DNS configuration (delegations, zone records, DS
records) is stored as a timeline of intervals rather than a mutable cell,
so the world can be queried *as of* any instant.  Later-added intervals
shadow earlier ones wherever they overlap, which makes a temporary hijack
window a single ``set_window`` call: the baseline open-ended interval
resumes by itself when the window ends.
"""

from __future__ import annotations

from datetime import datetime
from typing import Generic, Hashable, Iterator, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class _Interval(Generic[V]):
    __slots__ = ("start", "end", "value")

    def __init__(self, start: datetime, end: datetime | None, value: V) -> None:
        self.start = start
        self.end = end
        self.value = value

    def contains(self, at: datetime) -> bool:
        if at < self.start:
            return False
        return self.end is None or at < self.end


class TimelineMap(Generic[K, V]):
    """Map from key to a shadowing timeline of values."""

    def __init__(self) -> None:
        self._intervals: dict[K, list[_Interval[V]]] = {}

    def set(self, key: K, value: V, start: datetime, end: datetime | None = None) -> None:
        """Record that ``key`` has ``value`` over ``[start, end)``.

        ``end=None`` leaves the interval open.  Overlaps with previously
        recorded intervals are resolved in favour of this (newer) one.
        """
        if end is not None and end <= start:
            raise ValueError("interval must have positive duration")
        self._intervals.setdefault(key, []).append(_Interval(start, end, value))

    def set_window(self, key: K, value: V, start: datetime, end: datetime) -> None:
        """Alias of :meth:`set` with a mandatory end — reads better at call
        sites that express temporary overrides such as hijack windows."""
        self.set(key, value, start, end)

    def at(self, key: K, when: datetime) -> V | None:
        """Value of ``key`` at instant ``when`` (newest shadowing wins)."""
        intervals = self._intervals.get(key)
        if not intervals:
            return None
        for interval in reversed(intervals):
            if interval.contains(when):
                return interval.value
        return None

    def history(self, key: K) -> list[tuple[datetime, datetime | None, V]]:
        """Raw intervals for ``key`` in insertion (i.e. priority) order."""
        return [(i.start, i.end, i.value) for i in self._intervals.get(key, [])]

    def effective_changes(
        self, key: K, start: datetime, end: datetime
    ) -> list[tuple[datetime, V]]:
        """Observable value changes for ``key`` within ``[start, end]``.

        Returns (instant, new-value) pairs at each boundary where the
        shadow-resolved value changes, including the value in force at
        ``start``.  This is what a perfectly-sampled passive observer
        would see.
        """
        boundaries = {start, end}
        for interval in self._intervals.get(key, []):
            if start <= interval.start <= end:
                boundaries.add(interval.start)
            if interval.end is not None and start <= interval.end <= end:
                boundaries.add(interval.end)
        changes: list[tuple[datetime, V]] = []
        previous: V | None = None
        for instant in sorted(boundaries):
            value = self.at(key, instant)
            if not changes or value != previous:
                if value is not None:
                    changes.append((instant, value))
                previous = value
        return changes

    def keys(self) -> Iterator[K]:
        return iter(self._intervals)

    def __contains__(self, key: K) -> bool:
        return key in self._intervals

    def __len__(self) -> int:
        return len(self._intervals)
