"""Daily zone-file archive and delegation diffing (CAIDA-DZDB stand-in).

Zone files are snapshotted once a day at midnight; the archive diffs
consecutive snapshots to surface delegation changes and can summarize,
per domain, how many archive days a given (rogue) nameserver set was
ever visible — the Section 5.3 question of whether zone files could have
caught a hijack at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta

from repro.dns.registry import Registry, ZoneSnapshot
from repro.net.names import public_suffix, registered_domain
from repro.net.timeline import iter_days


@dataclass(frozen=True, slots=True)
class DelegationChange:
    """One observed day-over-day NS-set change for a domain."""

    domain: str
    day: date
    before: tuple[str, ...]
    after: tuple[str, ...]

    @property
    def added(self) -> frozenset[str]:
        return frozenset(self.after) - frozenset(self.before)

    @property
    def removed(self) -> frozenset[str]:
        return frozenset(self.before) - frozenset(self.after)


class ZoneArchive:
    """An archive of daily snapshots for one registry suffix."""

    def __init__(self, registry: Registry, suffix: str) -> None:
        suffix = suffix.lower()
        if suffix not in registry.suffixes:
            raise ValueError(f"registry does not administer {suffix}")
        self._registry = registry
        self.suffix = suffix
        self._snapshots: dict[date, ZoneSnapshot] = {}

    def snapshot(self, day: date) -> ZoneSnapshot:
        """The zone file for ``day`` (archived on first access)."""
        cached = self._snapshots.get(day)
        if cached is None:
            cached = self._registry.zone_snapshot(self.suffix, day)
            self._snapshots[day] = cached
        return cached

    def collect(self, start: date, end: date) -> int:
        """Archive every day in the range; returns number of snapshots."""
        count = 0
        for day in iter_days(start, end):
            self.snapshot(day)
            count += 1
        return count

    def diff(self, earlier: date, later: date) -> list[DelegationChange]:
        """Delegation differences between two archived days."""
        before = self.snapshot(earlier).delegations
        after = self.snapshot(later).delegations
        changes: list[DelegationChange] = []
        for domain in sorted(set(before) | set(after)):
            old_ns = before.get(domain, ())
            new_ns = after.get(domain, ())
            if old_ns != new_ns:
                changes.append(DelegationChange(domain, later, old_ns, new_ns))
        return changes

    def changes_over(self, start: date, end: date) -> list[DelegationChange]:
        """All day-over-day delegation changes in the range."""
        changes: list[DelegationChange] = []
        previous = start
        for day in iter_days(start + timedelta(days=1), end):
            changes.extend(self.diff(previous, day))
            previous = day
        return changes

    def days_delegated_to(
        self, domain: str, nameservers: frozenset[str] | set[str], start: date, end: date
    ) -> int:
        """On how many archive days did the domain's NS set intersect
        ``nameservers``?  (Zero for every sub-day hijack — the paper's
        transparency gap.)"""
        base = registered_domain(domain)
        if public_suffix(base) != self.suffix:
            raise ValueError(f"{base} is not under .{self.suffix}")
        wanted = {ns.lower().rstrip(".") for ns in nameservers}
        days = 0
        for day in iter_days(start, end):
            observed = {ns.lower().rstrip(".") for ns in self.snapshot(day).ns_of(base)}
            if observed & wanted:
                days += 1
        return days
