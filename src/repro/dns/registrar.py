"""Registrars: the privileged gateway to the registry database.

Registrants hold accounts here; the registrar validates credentials and
forwards delegation updates to the registry.  The attack's "develop
capability" stage is modeled explicitly: compromise a registrant account
(path a), compromise the registrar wholesale (path b), or go straight to
the registry (path c) — all three let the attacker move NS records, and
both (a) and (b) bypass registrar-side protections such as 2FA unless a
registry lock is in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

from repro.dns.registry import Registry
from repro.net.names import registered_domain


class RegistrarError(Exception):
    """Authentication or authorization failure at the registrar."""


@dataclass(frozen=True, slots=True)
class Credential:
    username: str
    password: str


@dataclass
class Account:
    username: str
    password: str
    domains: set[str] = field(default_factory=set)
    two_factor: bool = False
    registry_lock: bool = False


class Registrar:
    """A registrar fronting one or more registries."""

    def __init__(self, name: str, registries: list[Registry]) -> None:
        self.name = name
        # Keep the caller's list object: the world grows it lazily as new
        # TLD registries come into existence.
        self._registries = registries
        self._accounts: dict[str, Account] = {}
        self._fully_compromised = False

    # -- account management -------------------------------------------------

    def create_account(
        self, username: str, password: str, two_factor: bool = False
    ) -> Account:
        if username in self._accounts:
            raise RegistrarError(f"account {username!r} already exists")
        account = Account(username=username, password=password, two_factor=two_factor)
        self._accounts[username] = account
        return account

    def account(self, username: str) -> Account:
        try:
            return self._accounts[username]
        except KeyError as exc:
            raise RegistrarError(f"no such account: {username!r}") from exc

    def _registry_for(self, domain: str) -> Registry:
        for registry in self._registries:
            if registry.administers(domain):
                return registry
        raise RegistrarError(f"{self.name} fronts no registry for {domain}")

    def _authenticate(self, credential: Credential, second_factor: bool) -> Account:
        account = self._accounts.get(credential.username)
        if account is None or account.password != credential.password:
            raise RegistrarError("invalid credentials")
        if account.two_factor and not second_factor:
            raise RegistrarError("second factor required")
        return account

    # -- registrant operations ----------------------------------------------

    def register_domain(
        self,
        credential: Credential,
        domain: str,
        nameservers: tuple[str, ...],
        at: datetime,
        second_factor: bool = False,
    ) -> None:
        account = self._authenticate(credential, second_factor)
        base = registered_domain(domain)
        registry = self._registry_for(base)
        registry.register(base, nameservers, registrar=self.name, at=at)
        account.domains.add(base)

    def update_delegation(
        self,
        credential: Credential,
        domain: str,
        nameservers: tuple[str, ...],
        start: datetime,
        end: datetime | None = None,
        second_factor: bool = False,
    ) -> None:
        """The registrant-facing (and attacker-facing) NS update."""
        account = self._authenticate(credential, second_factor)
        base = registered_domain(domain)
        if base not in account.domains:
            raise RegistrarError(f"{credential.username} does not hold {base}")
        if account.registry_lock:
            raise RegistrarError(f"{base} is registry-locked")
        self._registry_for(base).set_delegation(base, nameservers, start, end)

    def remove_ds(
        self,
        credential: Credential,
        domain: str,
        start: datetime,
        end: datetime | None = None,
        second_factor: bool = False,
    ) -> None:
        account = self._authenticate(credential, second_factor)
        base = registered_domain(domain)
        if base not in account.domains:
            raise RegistrarError(f"{credential.username} does not hold {base}")
        self._registry_for(base).remove_ds(base, start, end)

    # -- compromise paths (Section 3, "Develop Capability") ------------------

    def compromise_account(self, username: str) -> Credential:
        """Path (a): the attacker phishes/steals the account credential.

        A stolen credential carries the session's second factor with it
        (the paper's attackers bypassed 2FA by compromising the registrar
        or the session, so the simulation treats a stolen credential as a
        fully authenticated one).
        """
        account = self.account(username)
        account.two_factor = False
        return Credential(account.username, account.password)

    def compromise_registrar(self) -> None:
        """Path (b): the registrar's own systems are compromised."""
        self._fully_compromised = True

    def privileged_update(
        self,
        domain: str,
        nameservers: tuple[str, ...],
        start: datetime,
        end: datetime | None = None,
    ) -> None:
        """NS update using registrar-level access (requires compromise)."""
        if not self._fully_compromised:
            raise RegistrarError("registrar systems are not compromised")
        base = registered_domain(domain)
        self._registry_for(base).set_delegation(base, nameservers, start, end)
