"""TLD registries, delegations, and daily zone-file snapshots.

The registry database is the root of authority the attack ultimately
corrupts: it maps each registered domain to its authoritative nameserver
set (and optional DS records for DNSSEC).  Registrars hold privileged
write access.  ``zone_snapshot`` reproduces the daily zone-file view that
CAIDA-DZDB archives — its midnight granularity is why sub-day hijacks are
invisible there (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime, time

from repro.dns.timelinemap import TimelineMap
from repro.net.names import public_suffix, registered_domain


@dataclass(frozen=True, slots=True)
class ZoneSnapshot:
    """A daily zone-file snapshot: domain → NS set at local midnight."""

    suffix: str
    day: date
    delegations: dict[str, tuple[str, ...]]

    def ns_of(self, domain: str) -> tuple[str, ...]:
        return self.delegations.get(registered_domain(domain), ())

    def __contains__(self, domain: str) -> bool:
        return registered_domain(domain) in self.delegations


class Registry:
    """Registry database for one or more public suffixes."""

    def __init__(self, suffixes: set[str] | frozenset[str] | tuple[str, ...] | str) -> None:
        if isinstance(suffixes, str):
            suffixes = {suffixes}
        self.suffixes = frozenset(s.lower() for s in suffixes)
        if not self.suffixes:
            raise ValueError("registry must administer at least one suffix")
        self._delegations: TimelineMap[str, tuple[str, ...]] = TimelineMap()
        self._ds_records: TimelineMap[str, tuple[str, ...]] = TimelineMap()
        self._registrar_of: dict[str, str] = {}
        self._locked: set[str] = set()

    def administers(self, domain: str) -> bool:
        return public_suffix(domain) in self.suffixes

    def _check(self, domain: str) -> str:
        base = registered_domain(domain)
        if not self.administers(base):
            raise ValueError(f"{base} is not under this registry's suffixes")
        return base

    def register(
        self,
        domain: str,
        nameservers: tuple[str, ...],
        registrar: str,
        at: datetime,
    ) -> None:
        """Create the initial delegation for a domain."""
        base = self._check(domain)
        if not nameservers:
            raise ValueError("delegation requires at least one nameserver")
        if base in self._registrar_of:
            raise ValueError(f"{base} is already registered")
        self._registrar_of[base] = registrar
        self._delegations.set(base, tuple(nameservers), at)

    def registrar_of(self, domain: str) -> str | None:
        return self._registrar_of.get(registered_domain(domain))

    def lock_domain(self, domain: str) -> None:
        """Enable Registry Lock: delegation changes require the registry's
        out-of-band manual process (Section 7.2's strongest practical
        mitigation — Verisign-style)."""
        self._locked.add(self._check(domain))

    def unlock_domain(self, domain: str) -> None:
        self._locked.discard(self._check(domain))

    def is_locked(self, domain: str) -> bool:
        return registered_domain(domain) in self._locked

    def set_delegation(
        self,
        domain: str,
        nameservers: tuple[str, ...],
        start: datetime,
        end: datetime | None = None,
        force: bool = False,
    ) -> None:
        """Privileged write (reached via a registrar, or an attacker who
        compromised the registry itself).  ``end`` bounds a temporary
        change; the previous delegation resumes afterwards.

        Registry Lock blocks every registrar-channel write; only a
        ``force`` write — direct manipulation of the registry database,
        i.e. a registry compromise — bypasses it.  Defenses at one entity
        are conditional on the entities upstream (Section 7.2).
        """
        base = self._check(domain)
        if base not in self._registrar_of:
            raise ValueError(f"{base} is not registered")
        if base in self._locked and not force:
            raise PermissionError(f"{base} is registry-locked")
        if not nameservers:
            raise ValueError("delegation requires at least one nameserver")
        self._delegations.set(base, tuple(nameservers), start, end)

    def delegation_at(self, domain: str, at: datetime) -> tuple[str, ...]:
        return self._delegations.at(registered_domain(domain), at) or ()

    def delegation_changes(
        self, domain: str, start: datetime, end: datetime
    ) -> list[tuple[datetime, tuple[str, ...]]]:
        """Observable NS-set changes (for pDNS NS-record generation)."""
        return self._delegations.effective_changes(registered_domain(domain), start, end)

    def set_ds(
        self,
        domain: str,
        ds: tuple[str, ...],
        start: datetime,
        end: datetime | None = None,
    ) -> None:
        self._check(domain)
        self._ds_records.set(registered_domain(domain), tuple(ds), start, end)

    def remove_ds(self, domain: str, start: datetime, end: datetime | None = None) -> None:
        """Model an attacker (or operator) dropping DNSSEC for a window."""
        self._check(domain)
        self._ds_records.set(registered_domain(domain), (), start, end)

    def ds_at(self, domain: str, at: datetime) -> tuple[str, ...]:
        return self._ds_records.at(registered_domain(domain), at) or ()

    def domains(self) -> tuple[str, ...]:
        return tuple(self._registrar_of)

    def zone_snapshot(self, suffix: str, day: date) -> ZoneSnapshot:
        """The zone file for ``suffix`` as published at midnight of ``day``."""
        suffix = suffix.lower()
        if suffix not in self.suffixes:
            raise ValueError(f"registry does not administer {suffix}")
        midnight = datetime.combine(day, time(0, 0))
        delegations: dict[str, tuple[str, ...]] = {}
        for domain in self._registrar_of:
            if public_suffix(domain) != suffix:
                continue
            ns = self._delegations.at(domain, midnight)
            if ns:
                delegations[domain] = ns
        return ZoneSnapshot(suffix=suffix, day=day, delegations=delegations)
