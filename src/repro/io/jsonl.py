"""Line-delimited JSON primitives."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator


def write_jsonl(path: str | Path, records: Iterable[dict[str, Any]]) -> int:
    """Write records as one JSON object per line; returns the count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield one dict per non-empty line."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSON") from exc
