"""Canonical golden-report serialization for regression pinning.

A golden file is the canonical JSON rendering of one
:class:`PipelineReport` — every funnel counter, finding, classification,
shortlist entry, inspection verdict, and pivot, with dates as ISO
strings, enums by name, and every unordered collection sorted.  Two
reports are behaviorally identical iff their encodings are
byte-identical, which is exactly what ``tests/test_golden_reports.py``
asserts for the pinned seeds across backends and the empty fault plan.

The same canonical-encoding discipline backs the stage cache:
:func:`canonical_json` and :func:`canonical_digest` are the byte-stable
value encoder ``repro.cache`` fingerprints run inputs with.

Regenerate after an *intentional* behavior change with::

    python -m repro.cli golden --update
"""

from __future__ import annotations

import hashlib
import json
from datetime import date
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.core.pipeline import PipelineReport

GOLDEN_SCHEMA = "repro.io.golden-report/1"


def canonical_json(value: Any) -> str:
    """The canonical compact JSON encoding of a JSON-safe value.

    Keys are sorted and separators fixed, so two structurally equal
    values — regardless of dict insertion order — encode to identical
    bytes.  This is the stable-hash substrate for cache fingerprints.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


def canonical_digest(value: Any, digest_size: int = 16) -> str:
    """A hex blake2b digest of a value's canonical JSON encoding."""
    return hashlib.blake2b(
        canonical_json(value).encode("utf-8"), digest_size=digest_size
    ).hexdigest()


def golden_filename(seed: int) -> str:
    return f"paper_seed{seed}.json"


def golden_faults_filename(seed: int) -> str:
    """Pinned report of the fault-degraded variant of one seed's study."""
    return f"paper_seed{seed}_faults.json"


def _iso(value: date | None) -> str | None:
    return value.isoformat() if value is not None else None


def _name(value: Enum | None) -> str | None:
    return value.name if value is not None else None


def _deployment(deployment) -> dict[str, Any]:
    return {
        "asn": deployment.asn,
        "first_seen": _iso(deployment.first_seen),
        "last_seen": _iso(deployment.last_seen),
        "n_groups": len(deployment.groups),
        "ips": sorted(deployment.ips),
        "countries": sorted(deployment.countries),
    }


def _finding(finding) -> dict[str, Any]:
    return {
        "domain": finding.domain,
        "verdict": _name(finding.verdict),
        "detection": _name(finding.detection),
        "first_evidence": _iso(finding.first_evidence),
        "subdomain": finding.subdomain,
        "pdns_corroborated": finding.pdns_corroborated,
        "ct_corroborated": finding.ct_corroborated,
        "attacker_ips": list(finding.attacker_ips),
        "attacker_asn": finding.attacker_asn,
        "attacker_cc": finding.attacker_cc,
        "attacker_ns": list(finding.attacker_ns),
        "victim_asns": list(finding.victim_asns),
        "victim_ccs": list(finding.victim_ccs),
        "crtsh_id": finding.crtsh_id,
        "issuer_ca": finding.issuer_ca,
        "notes": list(finding.notes),
    }


def _classification(key, classification) -> dict[str, Any]:
    domain, period_index = key
    return {
        "domain": domain,
        "period_index": period_index,
        "kind": classification.kind.name,
        "subpatterns": [s.name for s in classification.subpatterns],
        "stable": [_deployment(d) for d in classification.stable],
        "transitions": [_deployment(d) for d in classification.transitions],
        "transients": [_deployment(d) for d in classification.transients],
    }


def _shortlist_entry(entry) -> dict[str, Any]:
    return {
        "domain": entry.domain,
        "period_index": entry.period_index,
        "transient": _deployment(entry.transient),
        "subpattern": entry.subpattern.name,
        "truly_anomalous": entry.truly_anomalous,
        "sensitive_names": list(entry.sensitive_names),
        "n_transient_records": len(entry.transient_records),
    }


def _inspection(result) -> dict[str, Any]:
    evidence = result.evidence
    return {
        "domain": result.entry.domain,
        "period_index": result.entry.period_index,
        "verdict": _name(result.verdict),
        "detection": _name(result.detection),
        "window": {
            "start": _iso(evidence.window.start),
            "end": _iso(evidence.window.end),
        },
        "n_ns_changes": len(evidence.ns_changes),
        "n_a_redirects": len(evidence.a_redirects),
        "n_ct_entries": len(evidence.ct_entries),
        "stale_certificate": evidence.stale_certificate,
        "notes": list(evidence.notes),
        "malicious_crtsh_id": (
            result.malicious_cert.crtsh_id if result.malicious_cert else None
        ),
        "attacker_ips": sorted(result.attacker_ips),
        "attacker_ns": sorted(result.attacker_ns),
        "pending_t1_star": result.pending_t1_star,
    }


def _pivot(pivot) -> dict[str, Any]:
    return {
        "domain": pivot.domain,
        "detection": pivot.detection.name,
        "verdict": _name(pivot.verdict),
        "via": pivot.via,
        "n_pdns_rows": len(pivot.pdns_rows),
        "malicious_crtsh_id": (
            pivot.malicious_cert.crtsh_id if pivot.malicious_cert else None
        ),
        "attacker_ips": sorted(pivot.attacker_ips),
        "attacker_ns": sorted(pivot.attacker_ns),
    }


def report_to_dict(report: PipelineReport) -> dict[str, Any]:
    """The report as a canonical, JSON-safe dictionary."""
    funnel = report.funnel
    return {
        "schema": GOLDEN_SCHEMA,
        "funnel": {
            "n_domains": funnel.n_domains,
            "n_maps": funnel.n_maps,
            "n_stable": funnel.n_stable,
            "n_transition": funnel.n_transition,
            "n_transient": funnel.n_transient,
            "n_noisy": funnel.n_noisy,
            "n_shortlisted": funnel.n_shortlisted,
            "n_truly_anomalous": funnel.n_truly_anomalous,
            "n_worth_examining": funnel.n_worth_examining,
            "n_t1_hijacked": funnel.n_t1_hijacked,
            "n_t2_hijacked": funnel.n_t2_hijacked,
            "n_t1_star": funnel.n_t1_star,
            "n_pivot_ip": funnel.n_pivot_ip,
            "n_pivot_ns": funnel.n_pivot_ns,
            "n_targeted": funnel.n_targeted,
            "n_hijacked": funnel.n_hijacked,
            "prune_reasons": dict(sorted(funnel.prune_reasons.items())),
        },
        "findings": [_finding(f) for f in report.findings],
        "classifications": [
            _classification(key, c)
            for key, c in sorted(report.classifications.items())
        ],
        "shortlist": [_shortlist_entry(e) for e in report.shortlist],
        "inspections": [_inspection(r) for r in report.inspections],
        "pivots": [_pivot(p) for p in report.pivots],
        "attacker_ips": sorted(report.attacker_ips),
        "attacker_ns": sorted(report.attacker_ns),
    }


def encode_report(report: PipelineReport) -> str:
    """The canonical byte-comparable text encoding of a report."""
    return json.dumps(report_to_dict(report), sort_keys=True, indent=1) + "\n"


def report_digest(report: PipelineReport, digest_size: int = 16) -> str:
    """A fast drift digest of a report for the run ledger.

    Byte-level identity is the golden wall's job
    (:func:`encode_report` against the pinned files); this digest exists
    so every ledger record can cheaply answer "did the report change
    since the last run?" without re-encoding the full canonical JSON,
    which costs tens of milliseconds on paper-scale reports and would
    blow the telemetry layer's <2% overhead budget.

    It hashes the funnel counters, prune reasons, and the full canonical
    rendering of every outcome-bearing section — findings, shortlist,
    inspections, pivots, attacker indicators — plus one line per
    classification (domain, period, kind, deployment counts).
    Deployment internals and subpattern labels are summarized rather
    than serialized: drift in them surfaces through the shortlist and
    inspection sections, which carry them forward and are hashed in
    full.  Two behaviorally identical runs — across backends, cache
    temperatures, and processes — produce the same digest.
    """
    funnel = report.funnel
    h = hashlib.blake2b(digest_size=digest_size)
    h.update(
        "\n".join(
            f"{domain}|{period}|{c.kind.name}"
            f"|{len(c.stable)},{len(c.transitions)},{len(c.transients)}"
            for (domain, period), c in sorted(report.classifications.items())
        ).encode("utf-8")
    )
    payload = {
        "funnel": {
            "n_domains": funnel.n_domains,
            "n_maps": funnel.n_maps,
            "n_stable": funnel.n_stable,
            "n_transition": funnel.n_transition,
            "n_transient": funnel.n_transient,
            "n_noisy": funnel.n_noisy,
            "n_shortlisted": funnel.n_shortlisted,
            "n_truly_anomalous": funnel.n_truly_anomalous,
            "n_worth_examining": funnel.n_worth_examining,
            "n_t1_hijacked": funnel.n_t1_hijacked,
            "n_t2_hijacked": funnel.n_t2_hijacked,
            "n_t1_star": funnel.n_t1_star,
            "n_pivot_ip": funnel.n_pivot_ip,
            "n_pivot_ns": funnel.n_pivot_ns,
            "n_targeted": funnel.n_targeted,
            "n_hijacked": funnel.n_hijacked,
        },
        "prune": dict(sorted(funnel.prune_reasons.items())),
        "findings": [_finding(f) for f in report.findings],
        "shortlist": [_shortlist_entry(e) for e in report.shortlist],
        "inspections": [_inspection(r) for r in report.inspections],
        "pivots": [_pivot(p) for p in report.pivots],
        "attacker_ips": sorted(report.attacker_ips),
        "attacker_ns": sorted(report.attacker_ns),
    }
    h.update(canonical_json(payload).encode("utf-8"))
    return h.hexdigest()


def write_golden(report: PipelineReport, path: str | Path) -> None:
    Path(path).write_text(encode_report(report))


def read_golden(path: str | Path) -> str:
    return Path(path).read_text()
