"""Persistence for the corroboration sources: CT log and AS2Org.

A saved study needs more than scans and pDNS — inspection consults
crt.sh and the shortlist consults the AS-to-Organization mapping.  The
CT export carries each logged certificate with its log timestamp and
revocation fact; loading reconstructs a CTLog + RevocationRegistry +
CrtShService triple that answers queries identically.
"""

from __future__ import annotations

from datetime import date, timedelta
from pathlib import Path

from repro.ct.crtsh import CrtShService
from repro.ct.log import CTLog
from repro.io.datasets import _cert_from_dict, _cert_to_dict
from repro.io.jsonl import read_jsonl, write_jsonl
from repro.ipintel.as2org import AS2Org
from repro.tls.revocation import RevocationMechanism, RevocationRegistry, RevocationStatus


def save_ct(crtsh_source: CTLog, revocations: RevocationRegistry, path: str | Path) -> int:
    """Persist a CT log with per-certificate revocation facts."""
    def rows():
        for entry in crtsh_source.entries():
            cert = entry.certificate
            mechanism = revocations.mechanism_of(cert.issuer)
            live = revocations.live_status(cert, cert.not_after)
            yield {
                "logged_at": entry.timestamp.isoformat(),
                "revoked": live is RevocationStatus.REVOKED,
                "mechanism": mechanism.value,
                "certificate": _cert_to_dict(cert),
            }

    return write_jsonl(path, rows())


def load_ct(
    path: str | Path, asof: date | None = None
) -> tuple[CTLog, RevocationRegistry, CrtShService]:
    """Reconstruct the CT stack from :func:`save_ct` output."""
    log = CTLog()
    revocations = RevocationRegistry()
    latest = date(1970, 1, 1)
    for row in read_jsonl(path):
        cert = _cert_from_dict(row["certificate"])
        logged_at = date.fromisoformat(row["logged_at"])
        latest = max(latest, cert.not_after)
        revocations.set_mechanism(cert.issuer, RevocationMechanism(row["mechanism"]))
        logged, _sct = log.submit(cert, logged_at)
        if row["revoked"]:
            revocations.revoke(logged, on=min(cert.not_after, logged_at + timedelta(days=30)))
    crtsh = CrtShService([log], revocations, asof=asof or latest + timedelta(days=365))
    return log, revocations, crtsh


def save_as2org(mapping: AS2Org, path: str | Path) -> int:
    """Persist an AS-to-Organization mapping."""
    rows = []
    named_orgs: set[str] = set()
    for asn, org in mapping.items():
        name = mapping.org_name(org) if org not in named_orgs else None
        rows.append({"asn": asn, "org": org, "name": name})
        named_orgs.add(org)
    return write_jsonl(path, rows)


def load_as2org(path: str | Path) -> AS2Org:
    mapping = AS2Org()
    for row in read_jsonl(path):
        mapping.assign(row["asn"], row["org"], row.get("name"))
    return mapping
