"""Dataset serialization: annotated scans and passive DNS.

Certificates are embedded in each scan row (denormalized but
self-contained — the same trade crt.sh makes); a loaded dataset
reconstructs shared :class:`Certificate` objects by fingerprint so that
deployment-map cert-identity comparisons keep working.
"""

from __future__ import annotations

from datetime import date
from pathlib import Path
from typing import Any

from repro.dns.records import RRType
from repro.io.jsonl import read_jsonl, write_jsonl
from repro.pdns.database import PassiveDNSDatabase
from repro.scan.dataset import ScanDataset
from repro.tls.certificate import Certificate, ValidationLevel


def _cert_to_dict(cert: Certificate) -> dict[str, Any]:
    return {
        "serial": cert.serial,
        "cn": cert.common_name,
        "sans": list(cert.sans),
        "issuer": cert.issuer,
        "not_before": cert.not_before.isoformat(),
        "not_after": cert.not_after.isoformat(),
        "validation": cert.validation.name,
        "crtsh_id": cert.crtsh_id,
        "key_id": cert.key_id,
    }


def _cert_from_dict(data: dict[str, Any]) -> Certificate:
    return Certificate(
        serial=data["serial"],
        common_name=data["cn"],
        sans=tuple(data["sans"]),
        issuer=data["issuer"],
        not_before=date.fromisoformat(data["not_before"]),
        not_after=date.fromisoformat(data["not_after"]),
        validation=ValidationLevel[data["validation"]],
        crtsh_id=data["crtsh_id"],
        key_id=data["key_id"],
    )


def save_scan_dataset(dataset: ScanDataset, path: str | Path) -> int:
    """Persist a scan dataset (header line + one line per record).

    Walks the columnar table directly — no record objects are
    materialized, and each interned value is read from its pool.
    """
    table = dataset.table

    def rows():
        yield {"kind": "header", "scan_dates": [d.isoformat() for d in dataset.scan_dates]}
        for row in range(len(table)):
            yield {
                "kind": "record",
                "scan_date": date.fromordinal(table.date_ord[row]).isoformat(),
                "ip": table.ips[table.ip_id[row]],
                "ports": list(table.port_sets[table.ports_id[row]]),
                "asn": table.asns[table.asn_id[row]],
                "country": table.countries[table.country_id[row]],
                "trusted": table.trusted(row),
                "sensitive": table.sensitive(row),
                "names": list(table.name_sets[table.names_id[row]]),
                "base_domains": list(table.base_sets[table.bases_id[row]]),
                "certificate": _cert_to_dict(table.certs[table.cert_id[row]]),
            }

    return write_jsonl(path, rows())


def load_scan_dataset(path: str | Path) -> ScanDataset:
    """Load a scan dataset saved by :func:`save_scan_dataset`.

    Rows append straight into a columnar :class:`~repro.scan.table
    .ScanTable`: every repeated value — IPs, ASNs, countries, port /
    name / base-domain tuples, and certificates (reconstructed once per
    fingerprint) — is interned on the way in, so a loaded dataset shares
    values exactly like the one that was saved.
    """
    from repro.scan.table import ScanTable

    scan_dates: tuple[date, ...] | None = None
    builder = ScanTable.build()
    cert_cache: dict[str, Certificate] = {}
    for row in read_jsonl(path):
        if row["kind"] == "header":
            scan_dates = tuple(date.fromisoformat(d) for d in row["scan_dates"])
            continue
        cert = _cert_from_dict(row["certificate"])
        cert = cert_cache.setdefault(cert.fingerprint, cert)
        builder.append_row(
            date.fromisoformat(row["scan_date"]).toordinal(),
            row["ip"],
            row["asn"],
            cert,
            row["country"],
            tuple(row["ports"]),
            tuple(row["names"]),
            tuple(row["base_domains"]),
            bool(row["trusted"]),
            bool(row["sensitive"]),
        )
    if scan_dates is None:
        raise ValueError(f"{path}: missing header line")
    return ScanDataset.from_table(builder.finish(), scan_dates)


def save_pdns(db: PassiveDNSDatabase, path: str | Path) -> int:
    """Persist a passive-DNS database (one aggregated row per line)."""
    def rows():
        for record in db.all_records():
            yield {
                "rrname": record.rrname,
                "rtype": record.rtype.value,
                "rdata": record.rdata,
                "first_seen": record.first_seen.isoformat(),
                "last_seen": record.last_seen.isoformat(),
                "count": record.count,
            }

    return write_jsonl(path, rows())


def load_pdns(path: str | Path) -> PassiveDNSDatabase:
    """Load a passive-DNS database saved by :func:`save_pdns`.

    The aggregate (first, last, count) is replayed exactly: first-seen
    and last-seen observations plus synthetic middle hits.
    """
    db = PassiveDNSDatabase()
    for row in read_jsonl(path):
        rtype = RRType(row["rtype"])
        first = date.fromisoformat(row["first_seen"])
        last = date.fromisoformat(row["last_seen"])
        count = int(row["count"])
        db.add_observation(row["rrname"], rtype, row["rdata"], first)
        if count > 1:
            db.add_observation(row["rrname"], rtype, row["rdata"], last)
        for _ in range(count - 2):
            db.add_observation(row["rrname"], rtype, row["rdata"], last)
    return db
