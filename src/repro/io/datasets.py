"""Dataset serialization: annotated scans and passive DNS.

Certificates are embedded in each scan row (denormalized but
self-contained — the same trade crt.sh makes); a loaded dataset
reconstructs shared :class:`Certificate` objects by fingerprint so that
deployment-map cert-identity comparisons keep working.
"""

from __future__ import annotations

from datetime import date
from pathlib import Path
from typing import Any

from repro.dns.records import RRType
from repro.io.jsonl import read_jsonl, write_jsonl
from repro.pdns.database import PassiveDNSDatabase
from repro.scan.annotate import AnnotatedScanRecord
from repro.scan.dataset import ScanDataset
from repro.tls.certificate import Certificate, ValidationLevel


def _cert_to_dict(cert: Certificate) -> dict[str, Any]:
    return {
        "serial": cert.serial,
        "cn": cert.common_name,
        "sans": list(cert.sans),
        "issuer": cert.issuer,
        "not_before": cert.not_before.isoformat(),
        "not_after": cert.not_after.isoformat(),
        "validation": cert.validation.name,
        "crtsh_id": cert.crtsh_id,
        "key_id": cert.key_id,
    }


def _cert_from_dict(data: dict[str, Any]) -> Certificate:
    return Certificate(
        serial=data["serial"],
        common_name=data["cn"],
        sans=tuple(data["sans"]),
        issuer=data["issuer"],
        not_before=date.fromisoformat(data["not_before"]),
        not_after=date.fromisoformat(data["not_after"]),
        validation=ValidationLevel[data["validation"]],
        crtsh_id=data["crtsh_id"],
        key_id=data["key_id"],
    )


def save_scan_dataset(dataset: ScanDataset, path: str | Path) -> int:
    """Persist a scan dataset (header line + one line per record)."""
    def rows():
        yield {"kind": "header", "scan_dates": [d.isoformat() for d in dataset.scan_dates]}
        for record in dataset.records():
            yield {
                "kind": "record",
                "scan_date": record.scan_date.isoformat(),
                "ip": record.ip,
                "ports": list(record.ports),
                "asn": record.asn,
                "country": record.country,
                "trusted": record.trusted,
                "sensitive": record.sensitive,
                "names": list(record.names),
                "base_domains": list(record.base_domains),
                "certificate": _cert_to_dict(record.certificate),
            }

    return write_jsonl(path, rows())


def load_scan_dataset(path: str | Path) -> ScanDataset:
    """Load a scan dataset saved by :func:`save_scan_dataset`."""
    scan_dates: tuple[date, ...] | None = None
    records: list[AnnotatedScanRecord] = []
    cert_cache: dict[str, Certificate] = {}
    for row in read_jsonl(path):
        if row["kind"] == "header":
            scan_dates = tuple(date.fromisoformat(d) for d in row["scan_dates"])
            continue
        cert = _cert_from_dict(row["certificate"])
        cert = cert_cache.setdefault(cert.fingerprint, cert)
        records.append(
            AnnotatedScanRecord(
                scan_date=date.fromisoformat(row["scan_date"]),
                ip=row["ip"],
                ports=tuple(row["ports"]),
                asn=row["asn"],
                country=row["country"],
                certificate=cert,
                trusted=row["trusted"],
                sensitive=row["sensitive"],
                names=tuple(row["names"]),
                base_domains=tuple(row["base_domains"]),
            )
        )
    if scan_dates is None:
        raise ValueError(f"{path}: missing header line")
    return ScanDataset(records, scan_dates)


def save_pdns(db: PassiveDNSDatabase, path: str | Path) -> int:
    """Persist a passive-DNS database (one aggregated row per line)."""
    def rows():
        for record in db.all_records():
            yield {
                "rrname": record.rrname,
                "rtype": record.rtype.value,
                "rdata": record.rdata,
                "first_seen": record.first_seen.isoformat(),
                "last_seen": record.last_seen.isoformat(),
                "count": record.count,
            }

    return write_jsonl(path, rows())


def load_pdns(path: str | Path) -> PassiveDNSDatabase:
    """Load a passive-DNS database saved by :func:`save_pdns`.

    The aggregate (first, last, count) is replayed exactly: first-seen
    and last-seen observations plus synthetic middle hits.
    """
    db = PassiveDNSDatabase()
    for row in read_jsonl(path):
        rtype = RRType(row["rtype"])
        first = date.fromisoformat(row["first_seen"])
        last = date.fromisoformat(row["last_seen"])
        count = int(row["count"])
        db.add_observation(row["rrname"], rtype, row["rdata"], first)
        if count > 1:
            db.add_observation(row["rrname"], rtype, row["rdata"], last)
        for _ in range(count - 2):
            db.add_observation(row["rrname"], rtype, row["rdata"], last)
    return db
