"""Persistence: JSONL round-trips for datasets and reports.

Generating a four-year study takes seconds, but downstream analysis
sessions shouldn't have to regenerate it — and real deployments of this
pipeline would consume *recorded* scan/pDNS/CT data.  This package
serializes each dataset to line-delimited JSON (one record per line,
stable field order) and loads it back into the exact objects the
pipeline consumes, so a saved study replays bit-identically.
"""

from repro.io.jsonl import read_jsonl, write_jsonl
from repro.io.datasets import (
    load_pdns,
    load_scan_dataset,
    save_pdns,
    save_scan_dataset,
)
from repro.io.golden import (
    GOLDEN_SCHEMA,
    encode_report,
    report_digest,
    golden_filename,
    read_golden,
    report_to_dict,
    write_golden,
)
from repro.io.intel import load_as2org, load_ct, save_as2org, save_ct
from repro.io.reports import load_findings, save_findings

__all__ = [
    "read_jsonl",
    "write_jsonl",
    "load_pdns",
    "load_scan_dataset",
    "save_pdns",
    "save_scan_dataset",
    "load_as2org",
    "load_ct",
    "save_as2org",
    "save_ct",
    "load_findings",
    "save_findings",
    "GOLDEN_SCHEMA",
    "encode_report",
    "report_digest",
    "golden_filename",
    "read_golden",
    "report_to_dict",
    "write_golden",
]
