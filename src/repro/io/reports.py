"""Findings serialization: export/import pipeline verdicts.

The row codec (:func:`finding_to_row` / :func:`finding_from_row`) is
shared between the JSONL export below and the assemble stage's cache
product — one finding shape on disk, whoever wrote it.
"""

from __future__ import annotations

from datetime import date
from pathlib import Path

from repro.core.report import DomainFinding
from repro.core.types import DetectionType, Verdict
from repro.io.jsonl import read_jsonl, write_jsonl
from repro.obs.provenance import transitions_from_dicts, transitions_to_dicts


def finding_to_row(finding: DomainFinding) -> dict:
    """One finding as a JSON-safe dict (plain ints/strings/lists)."""
    return {
        "domain": finding.domain,
        "verdict": finding.verdict.value,
        "detection": finding.detection.value if finding.detection else None,
        "first_evidence": (
            finding.first_evidence.isoformat() if finding.first_evidence else None
        ),
        "subdomain": finding.subdomain,
        "pdns": finding.pdns_corroborated,
        "ct": finding.ct_corroborated,
        "attacker_ips": list(finding.attacker_ips),
        "attacker_asn": finding.attacker_asn,
        "attacker_cc": finding.attacker_cc,
        "attacker_ns": list(finding.attacker_ns),
        "victim_asns": list(finding.victim_asns),
        "victim_ccs": list(finding.victim_ccs),
        "crtsh_id": finding.crtsh_id,
        "issuer_ca": finding.issuer_ca,
        "notes": list(finding.notes),
        "provenance": transitions_to_dicts(finding.provenance),
    }


def finding_from_row(row: dict) -> DomainFinding:
    """Inverse of :func:`finding_to_row` (tolerates missing optionals)."""
    detection = row.get("detection")
    return DomainFinding(
        domain=row["domain"],
        verdict=Verdict(row["verdict"]),
        detection=DetectionType(detection) if detection else None,
        first_evidence=(
            date.fromisoformat(row["first_evidence"])
            if row.get("first_evidence")
            else None
        ),
        subdomain=row.get("subdomain", ""),
        pdns_corroborated=row.get("pdns", False),
        ct_corroborated=row.get("ct", False),
        attacker_ips=tuple(row.get("attacker_ips", ())),
        attacker_asn=row.get("attacker_asn"),
        attacker_cc=row.get("attacker_cc"),
        attacker_ns=tuple(row.get("attacker_ns", ())),
        victim_asns=tuple(row.get("victim_asns", ())),
        victim_ccs=tuple(row.get("victim_ccs", ())),
        crtsh_id=row.get("crtsh_id", 0),
        issuer_ca=row.get("issuer_ca", ""),
        notes=tuple(row.get("notes", ())),
        provenance=transitions_from_dicts(row.get("provenance", [])),
    )


def save_findings(findings: list[DomainFinding], path: str | Path) -> int:
    """Persist findings (one JSON object per victim domain)."""
    return write_jsonl(path, (finding_to_row(f) for f in findings))


def load_findings(path: str | Path) -> list[DomainFinding]:
    """Load findings saved by :func:`save_findings`."""
    return [finding_from_row(row) for row in read_jsonl(path)]
