"""Certificate revocation: CRLs and OCSP.

The paper's Table 9 analysis hinges on an asymmetry between CAs: Comodo
publishes CRLs that crt.sh indexes, so revocations are retroactively
visible; Let's Encrypt only serves OCSP, so revocation status of expired
certificates is unknowable after the fact.  We model both mechanisms so
the certificate analysis reproduces that asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from enum import Enum

from repro.tls.certificate import Certificate


class RevocationMechanism(Enum):
    CRL = "crl"
    OCSP = "ocsp"


class RevocationStatus(Enum):
    """Retroactive revocation verdict for a certificate."""

    GOOD = "good"
    REVOKED = "revoked"
    UNKNOWN = "unknown"  # OCSP-only issuer; status unrecoverable post-expiry


@dataclass(frozen=True, slots=True)
class RevocationEntry:
    fingerprint: str
    revoked_on: date
    reason: str = "unspecified"


class RevocationRegistry:
    """Per-CA revocation records plus each CA's publication mechanism."""

    def __init__(self) -> None:
        self._mechanism: dict[str, RevocationMechanism] = {}
        self._entries: dict[str, RevocationEntry] = {}

    def set_mechanism(self, ca_name: str, mechanism: RevocationMechanism) -> None:
        self._mechanism[ca_name] = mechanism

    def mechanism_of(self, ca_name: str) -> RevocationMechanism:
        return self._mechanism.get(ca_name, RevocationMechanism.CRL)

    def revoke(self, cert: Certificate, on: date, reason: str = "unspecified") -> None:
        if not cert.valid_on(on):
            raise ValueError("cannot revoke a certificate outside its validity window")
        self._entries[cert.fingerprint] = RevocationEntry(cert.fingerprint, on, reason)

    def live_status(self, cert: Certificate, on: date) -> RevocationStatus:
        """Status as a client checking at time ``on`` would see it."""
        entry = self._entries.get(cert.fingerprint)
        if entry is not None and entry.revoked_on <= on:
            return RevocationStatus.REVOKED
        return RevocationStatus.GOOD

    def retroactive_status(self, cert: Certificate, asof: date) -> RevocationStatus:
        """Status a *retroactive* auditor (crt.sh style) can determine.

        CRL-publishing issuers leave a durable record.  OCSP-only issuers
        stop answering for expired certificates, so once the certificate
        has expired the status is UNKNOWN — the Let's Encrypt case in
        Table 9.
        """
        if self.mechanism_of(cert.issuer) is RevocationMechanism.OCSP:
            if asof > cert.not_after:
                return RevocationStatus.UNKNOWN
            return self.live_status(cert, asof)
        entry = self._entries.get(cert.fingerprint)
        if entry is not None and entry.revoked_on <= asof:
            return RevocationStatus.REVOKED
        return RevocationStatus.GOOD

    def __len__(self) -> int:
        return len(self._entries)
