"""TLS certificate substrate.

Models the parts of X.509 the methodology consumes: subject alternative
names, validity windows, the issuing CA, browser root-program trust
(Apple / Microsoft / Mozilla, as in the paper's footnote 5), wildcard SAN
matching, and revocation status via CRL or OCSP.
"""

from repro.tls.certificate import Certificate, ValidationLevel
from repro.tls.matching import names_secured, san_matches
from repro.tls.revocation import RevocationMechanism, RevocationRegistry, RevocationStatus
from repro.tls.truststore import RootProgram, TrustStore

__all__ = [
    "Certificate",
    "ValidationLevel",
    "names_secured",
    "san_matches",
    "RevocationMechanism",
    "RevocationRegistry",
    "RevocationStatus",
    "RootProgram",
    "TrustStore",
]
