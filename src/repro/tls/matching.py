"""SAN matching and the names-secured relation.

Deployment maps are keyed by registered domain; a scan record belongs to
a domain's observable infrastructure when any SAN on the returned
certificate secures a name under that domain.  Wildcard SANs follow the
usual single-left-label rule (``*.example.com`` matches
``mail.example.com`` but neither ``example.com`` nor ``a.b.example.com``).
"""

from __future__ import annotations

from repro.net.names import registered_domain
from repro.tls.certificate import Certificate


def san_matches(san: str, fqdn: str) -> bool:
    """Does a single SAN entry cover ``fqdn``?"""
    san = san.lower().rstrip(".")
    fqdn = fqdn.lower().rstrip(".")
    if san.startswith("*."):
        suffix = san[2:]
        if not fqdn.endswith("." + suffix):
            return False
        return "." not in fqdn[: -(len(suffix) + 1)]
    return san == fqdn


def cert_covers(cert: Certificate, fqdn: str) -> bool:
    """Does any SAN on ``cert`` cover ``fqdn``?"""
    return any(san_matches(san, fqdn) for san in cert.sans)


def names_secured(cert: Certificate) -> frozenset[str]:
    """Concrete (non-wildcard) FQDNs listed on the certificate."""
    return frozenset(s for s in cert.sans if not s.startswith("*."))


def base_domains_secured(cert: Certificate) -> frozenset[str]:
    """Registered domains the certificate asserts authority over.

    Wildcard SANs count toward their registered domain: a scan hit for
    ``*.example.com`` is observable infrastructure for ``example.com``.
    """
    bases: set[str] = set()
    for san in cert.sans:
        name = san[2:] if san.startswith("*.") else san
        try:
            bases.add(registered_domain(name))
        except ValueError:
            continue
    return frozenset(bases)
