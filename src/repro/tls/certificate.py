"""The certificate model.

A :class:`Certificate` is an immutable record of what an Internet-wide
scan or a CT log entry exposes about a leaf certificate: who it claims to
secure (SANs), who signed it, when it is valid, and enough identity
(serial, fingerprint, crt.sh-style numeric id) to correlate the same
certificate across data sets — the correlation the paper's inspection
stage lives on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from datetime import date, timedelta
from enum import Enum


class ValidationLevel(Enum):
    """How the issuing CA validated the requester."""

    DV = "domain-validated"
    OV = "organization-validated"
    EV = "extended-validation"


@dataclass(frozen=True, slots=True)
class Certificate:
    """An issued leaf certificate.

    ``crtsh_id`` is the monotonically increasing identifier assigned when
    the certificate is logged to CT (mirroring crt.sh ids); certificates
    never logged (e.g. from an organization's internal CA) have id 0.
    """

    serial: int
    common_name: str
    sans: tuple[str, ...]
    issuer: str
    not_before: date
    not_after: date
    validation: ValidationLevel = ValidationLevel.DV
    crtsh_id: int = 0
    key_id: int = 0
    fingerprint: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.sans:
            raise ValueError("certificate must carry at least one SAN")
        if self.common_name not in self.sans:
            raise ValueError("common name must appear among the SANs")
        if self.not_after < self.not_before:
            raise ValueError("certificate expires before it is issued")
        if not self.fingerprint:
            digest = hashlib.sha256(
                "|".join(
                    (
                        str(self.serial),
                        self.common_name,
                        ",".join(self.sans),
                        self.issuer,
                        self.not_before.isoformat(),
                        self.not_after.isoformat(),
                        str(self.key_id),
                    )
                ).encode()
            ).hexdigest()
            object.__setattr__(self, "fingerprint", digest)

    @property
    def validity_days(self) -> int:
        return (self.not_after - self.not_before).days

    def valid_on(self, day: date) -> bool:
        return self.not_before <= day <= self.not_after

    def days_until_expiry(self, day: date) -> int:
        return (self.not_after - day).days

    def issued_within(self, day: date, days: int) -> bool:
        """Was this certificate issued within ``days`` days of ``day``?"""
        return abs((day - self.not_before).days) <= days

    def __str__(self) -> str:
        return (
            f"Certificate({self.common_name}, issuer={self.issuer}, "
            f"{self.not_before.isoformat()}..{self.not_after.isoformat()})"
        )


def rollover_of(cert: Certificate, serial: int, overlap_days: int = 14) -> Certificate:
    """Build the natural renewal of ``cert``: same names, fresh validity.

    Used by the benign world to model pattern S2 (certificate rollover on
    expiry within a stable deployment).
    """
    start = cert.not_after - timedelta(days=overlap_days)
    return Certificate(
        serial=serial,
        common_name=cert.common_name,
        sans=cert.sans,
        issuer=cert.issuer,
        not_before=start,
        not_after=start + timedelta(days=cert.validity_days),
        validation=cert.validation,
        crtsh_id=0,
        key_id=cert.key_id + 1,
    )
