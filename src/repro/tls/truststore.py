"""Browser root-program trust.

The paper marks a certificate as trusted "if it is trusted by either
Apple, Microsoft, or Mozilla" (footnote 5; the Chrome root store
postdates the study window).  We model trust at the granularity of the
issuing CA: each CA is included in zero or more root programs, and a
certificate is browser-trusted when its issuer is in at least one.
"""

from __future__ import annotations

from enum import Enum

from repro.tls.certificate import Certificate


class RootProgram(Enum):
    APPLE = "apple"
    MICROSOFT = "microsoft"
    MOZILLA = "mozilla"


ALL_PROGRAMS = frozenset(RootProgram)


class TrustStore:
    """Which CAs are included in which browser root programs."""

    def __init__(self) -> None:
        self._programs: dict[str, frozenset[RootProgram]] = {}

    def include(self, ca_name: str, programs: frozenset[RootProgram] = ALL_PROGRAMS) -> None:
        if not programs:
            raise ValueError("a trusted CA must be in at least one program")
        self._programs[ca_name] = frozenset(programs)

    def programs_of(self, ca_name: str) -> frozenset[RootProgram]:
        return self._programs.get(ca_name, frozenset())

    def is_trusted_ca(self, ca_name: str) -> bool:
        return bool(self._programs.get(ca_name))

    def is_browser_trusted(self, cert: Certificate) -> bool:
        """True if any of Apple / Microsoft / Mozilla trust the issuer."""
        return self.is_trusted_ca(cert.issuer)

    def __contains__(self, ca_name: str) -> bool:
        return self.is_trusted_ca(ca_name)
