"""Exceptions of the fault-injection layer.

Kept in a dependency-free module so both the execution backends (which
must catch worker faults to retry them) and the kernels (which raise the
injected ones inside workers) can import them without a cycle.
"""

from __future__ import annotations


class FaultError(ValueError):
    """A fault spec or plan could not be constructed."""


class WorkerFault(RuntimeError):
    """A worker-level failure the backend is allowed to retry.

    Genuine kernel exceptions (bugs in stage code) deliberately do NOT
    inherit from this: retrying them would only mask the defect.  The
    backends retry ``WorkerFault`` and broken-pool conditions, nothing
    else.
    """


class InjectedWorkerCrash(WorkerFault):
    """A deterministic, plan-scheduled worker crash."""


class RetryBudgetExceeded(WorkerFault):
    """A chunk kept failing after the plan's full retry budget."""
