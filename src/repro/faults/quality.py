"""The run's data-quality ledger.

Every degradation the fault layer applies — and every worker fault the
backends absorb — is recorded here, attached to the run's
:class:`repro.exec.StageContext`, and exported as the ``data_quality``
section of the JSON run manifest.  Downstream consumers read it to
answer "how much telemetry was this verdict actually computed from?";
the shortlist reads the scan gaps to widen its visibility denominator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Any

from repro.net.timeline import DateInterval


@dataclass
class DataQuality:
    """What is known to be missing, late, or retried in one run."""

    scan_dropped_dates: tuple[date, ...] = ()
    scan_dropped_records: int = 0
    pdns_blackouts: tuple[DateInterval, ...] = ()
    pdns_rows_dropped: int = 0
    pdns_rows_trimmed: int = 0
    ct_delay_days: int = 0
    ct_entries_hidden: int = 0
    routing_stale_prefixes: int = 0
    worker_crashes: int = 0
    worker_slowdowns: int = 0
    worker_retries: int = 0
    pool_rebuilds: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Did anything at all fall short of perfect telemetry?"""
        return bool(
            self.scan_dropped_dates
            or self.scan_dropped_records
            or self.pdns_blackouts
            or self.pdns_rows_dropped
            or self.pdns_rows_trimmed
            or self.ct_delay_days
            or self.ct_entries_hidden
            or self.routing_stale_prefixes
            or self.worker_crashes
            or self.worker_slowdowns
            or self.worker_retries
            or self.pool_rebuilds
        )

    def note(self, text: str) -> None:
        self.notes.append(text)

    def record_retry(self, kind: str) -> None:
        """Fold one backend retry event into the worker counters."""
        self.worker_retries += 1
        if kind == "crash":
            self.worker_crashes += 1
        elif kind == "pool_rebuild":
            self.pool_rebuilds += 1

    def to_dict(self) -> dict[str, Any]:
        """The manifest's ``data_quality`` section."""
        return {
            "degraded": self.degraded,
            "scan": {
                "dropped_dates": [d.isoformat() for d in self.scan_dropped_dates],
                "dropped_records": self.scan_dropped_records,
            },
            "pdns": {
                "blackouts": [
                    {"start": w.start.isoformat(), "end": w.end.isoformat()}
                    for w in self.pdns_blackouts
                ],
                "rows_dropped": self.pdns_rows_dropped,
                "rows_trimmed": self.pdns_rows_trimmed,
            },
            "ct": {
                "delay_days": self.ct_delay_days,
                "entries_hidden": self.ct_entries_hidden,
            },
            "routing": {"stale_prefixes": self.routing_stale_prefixes},
            "workers": {
                "crashes": self.worker_crashes,
                "slowdowns": self.worker_slowdowns,
                "retries": self.worker_retries,
                "pool_rebuilds": self.pool_rebuilds,
            },
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> DataQuality:
        """Rebuild a ledger from a manifest's ``data_quality`` section."""
        scan = data.get("scan", {})
        pdns = data.get("pdns", {})
        ct = data.get("ct", {})
        routing = data.get("routing", {})
        workers = data.get("workers", {})
        return cls(
            scan_dropped_dates=tuple(
                date.fromisoformat(d) for d in scan.get("dropped_dates", [])
            ),
            scan_dropped_records=scan.get("dropped_records", 0),
            pdns_blackouts=tuple(
                DateInterval(
                    date.fromisoformat(w["start"]), date.fromisoformat(w["end"])
                )
                for w in pdns.get("blackouts", [])
            ),
            pdns_rows_dropped=pdns.get("rows_dropped", 0),
            pdns_rows_trimmed=pdns.get("rows_trimmed", 0),
            ct_delay_days=ct.get("delay_days", 0),
            ct_entries_hidden=ct.get("entries_hidden", 0),
            routing_stale_prefixes=routing.get("stale_prefixes", 0),
            worker_crashes=workers.get("crashes", 0),
            worker_slowdowns=workers.get("slowdowns", 0),
            worker_retries=workers.get("retries", 0),
            pool_rebuilds=workers.get("pool_rebuilds", 0),
            notes=list(data.get("notes", [])),
        )


def format_data_quality(quality: DataQuality) -> str:
    """Render the ledger as a short human-readable block."""
    if not quality.degraded:
        return "data quality: complete (no known gaps)"
    lines = ["data quality: DEGRADED"]
    if quality.scan_dropped_dates:
        lines.append(
            f"  scans dropped:     {len(quality.scan_dropped_dates)} weekly scans"
        )
    if quality.scan_dropped_records:
        lines.append(f"  records dropped:   {quality.scan_dropped_records}")
    if quality.pdns_blackouts:
        windows = ", ".join(str(w) for w in quality.pdns_blackouts)
        lines.append(f"  pDNS blackouts:    {windows}")
    if quality.pdns_rows_dropped or quality.pdns_rows_trimmed:
        lines.append(
            f"  pDNS rows:         {quality.pdns_rows_dropped} dropped, "
            f"{quality.pdns_rows_trimmed} trimmed"
        )
    if quality.ct_delay_days:
        lines.append(
            f"  CT publication:    lagged {quality.ct_delay_days}d "
            f"({quality.ct_entries_hidden} entries past horizon)"
        )
    if quality.routing_stale_prefixes:
        lines.append(f"  routing table:     {quality.routing_stale_prefixes} stale prefixes")
    if quality.worker_retries or quality.worker_slowdowns:
        lines.append(
            f"  worker faults:     {quality.worker_crashes} crashes, "
            f"{quality.worker_slowdowns} slowdowns, {quality.worker_retries} retries, "
            f"{quality.pool_rebuilds} pool rebuilds"
        )
    return "\n".join(lines)
