"""Applying a fault plan to a pipeline's input bundle.

Dataset faults are applied *up front*: the plan derives degraded copies
of the scan dataset, the pDNS database, the CT search service, and the
routing table before the first stage runs, and every derivation is
recorded in the :class:`DataQuality` ledger.  Degrading inputs rather
than query paths keeps the stages oblivious — the same pipeline code
runs on perfect and on degraded telemetry, and serial / process-pool
backends stay byte-identical because both consume the same derived
bundle.  (Worker faults are the exception: they are injected live by
the execution backends, which retry them; see ``repro.exec.backends``.)
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.faults.plan import FaultPlan
from repro.faults.quality import DataQuality

if TYPE_CHECKING:
    from repro.core.pipeline import PipelineInputs
    from repro.pdns.database import PassiveDNSDatabase


def _pdns_row_spans(db: PassiveDNSDatabase) -> dict[tuple, tuple]:
    return {
        (r.rrname, r.rtype, r.rdata): (r.first_seen, r.last_seen)
        for r in db.all_records()
    }


def apply_faults(
    inputs: PipelineInputs, plan: FaultPlan, quality: DataQuality
) -> PipelineInputs:
    """Derive the degraded input bundle a plan prescribes.

    Returns a new :class:`PipelineInputs` (the original is untouched)
    and records every loss in ``quality``.  An empty plan returns the
    inputs unchanged.
    """
    if plan.is_empty:
        return inputs
    spec = plan.spec
    changes: dict[str, object] = {}

    if spec.drop_weeks or spec.drop_ports:
        scan = inputs.scan
        drop_dates = tuple(d for d in scan.scan_dates if plan.drops_scan(d))
        # The columnar drop path: decisions draw on identity fields read
        # straight from the table's columns, no records materialized.
        drop_row = plan.drops_record_fields if spec.drop_ports else None
        degraded = scan.degraded(drop_dates, drop_row=drop_row)
        lost = len(scan) - len(degraded)
        quality.scan_dropped_dates = drop_dates
        quality.scan_dropped_records = lost
        if drop_dates or lost:
            quality.note(
                f"scan: {len(drop_dates)} weekly scans and {lost} records lost"
            )
        changes["scan"] = degraded

    if spec.pdns_blackouts and inputs.scan.scan_dates:
        start, end = inputs.scan.scan_dates[0], inputs.scan.scan_dates[-1]
        windows = plan.blackout_windows(start, end)
        if windows:
            before = _pdns_row_spans(inputs.pdns)
            blacked = inputs.pdns.without_windows(list(windows))
            after = _pdns_row_spans(blacked)
            quality.pdns_blackouts = windows
            quality.pdns_rows_dropped = len(before) - len(after)
            quality.pdns_rows_trimmed = sum(
                1 for key, span in after.items() if before[key] != span
            )
            quality.note(
                f"pdns: {len(windows)} sensor blackouts "
                f"({quality.pdns_rows_dropped} rows lost, "
                f"{quality.pdns_rows_trimmed} trimmed)"
            )
            changes["pdns"] = blacked

    if spec.ct_delay_days:
        horizon = inputs.periods[-1].end if inputs.periods else None
        delayed = inputs.crtsh.with_publication_delay(
            spec.ct_delay_days, horizon=horizon
        )
        quality.ct_delay_days = spec.ct_delay_days
        quality.ct_entries_hidden = delayed.hidden_entries
        quality.note(
            f"ct: publication lagged {spec.ct_delay_days}d, "
            f"{delayed.hidden_entries} entries past the analysis horizon"
        )
        changes["crtsh"] = delayed

    if spec.routing_stale and inputs.routing is not None:
        stale = inputs.routing.thinned(plan.hides_prefix)
        quality.routing_stale_prefixes = len(inputs.routing) - len(stale)
        if quality.routing_stale_prefixes:
            quality.note(
                f"routing: {quality.routing_stale_prefixes} prefixes missing "
                "from the stale snapshot"
            )
        changes["routing"] = stale

    return replace(inputs, **changes) if changes else inputs


__all__ = ["apply_faults"]
