"""The fault-spec grammar.

A spec is a comma-separated list of ``channel=value`` clauses naming how
hard each telemetry source is degraded, e.g.::

    scan.drop_weeks=0.1,pdns.blackouts=2,ct.delay_days=21,workers.crash=0.2

Channels (all default to "off"):

========================  =====================================================
``scan.drop_weeks``       probability each weekly scan is lost entirely
``scan.drop_ports``       probability each per-port scan observation is lost
``pdns.blackouts``        number of sensor blackout windows to schedule
``pdns.blackout_days``    length of each blackout window in days (default 14)
``ct.delay_days``         CT log publication lag in days
``routing.stale``         probability each prefix is missing from the stale table
``workers.crash``         probability a chunk's first attempt crashes its worker
``workers.slow``          probability a chunk is artificially slowed
``workers.slow_ms``       injected latency per slowed chunk (default 25 ms)
``workers.max_retries``   retry budget per chunk (default 3)
``workers.backoff_ms``    base backoff before a retry, doubled per attempt
========================  =====================================================

Probabilities must lie in [0, 1]; counts must be non-negative.  An empty
(or all-zero) spec is the identity: a plan built from it injects nothing
and the pipeline's output is byte-identical to an un-faulted run.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.faults.errors import FaultError

_PROBABILITY_KEYS = {
    "scan.drop_weeks": "drop_weeks",
    "scan.drop_ports": "drop_ports",
    "routing.stale": "routing_stale",
    "workers.crash": "worker_crash",
    "workers.slow": "worker_slow",
}
_COUNT_KEYS = {
    "pdns.blackouts": "pdns_blackouts",
    "pdns.blackout_days": "pdns_blackout_days",
    "ct.delay_days": "ct_delay_days",
    "workers.slow_ms": "worker_slow_ms",
    "workers.max_retries": "max_retries",
    "workers.backoff_ms": "backoff_ms",
}
#: Spec keys that tune the retry policy rather than injecting a fault.
_POLICY_FIELDS = ("pdns_blackout_days", "worker_slow_ms", "max_retries", "backoff_ms")


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One parsed fault spec; immutable and hashable."""

    drop_weeks: float = 0.0
    drop_ports: float = 0.0
    pdns_blackouts: int = 0
    pdns_blackout_days: int = 14
    ct_delay_days: int = 0
    routing_stale: float = 0.0
    worker_crash: float = 0.0
    worker_slow: float = 0.0
    worker_slow_ms: int = 25
    max_retries: int = 3
    backoff_ms: int = 20

    def __post_init__(self) -> None:
        for key, attr in _PROBABILITY_KEYS.items():
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise FaultError(f"{key} must be a probability in [0, 1]: {value!r}")
        for key, attr in _COUNT_KEYS.items():
            value = getattr(self, attr)
            if value < 0:
                raise FaultError(f"{key} must be >= 0: {value!r}")
        if self.max_retries < 1:
            raise FaultError(f"workers.max_retries must be >= 1: {self.max_retries!r}")

    @property
    def is_empty(self) -> bool:
        """True when no fault channel is active (policy knobs ignored)."""
        return all(
            not getattr(self, f.name)
            for f in fields(self)
            if f.name not in _POLICY_FIELDS
        )

    @classmethod
    def parse(cls, text: str | None) -> FaultSpec:
        """Parse the ``channel=value[,channel=value...]`` grammar."""
        if text is None or not text.strip():
            return cls()
        values: dict[str, float | int] = {}
        for clause in text.split(","):
            clause = clause.strip()
            if not clause:
                continue
            key, sep, raw = clause.partition("=")
            key = key.strip()
            if not sep:
                raise FaultError(f"fault clause {clause!r} is not channel=value")
            if key in _PROBABILITY_KEYS:
                attr, value = _PROBABILITY_KEYS[key], float(raw)
            elif key in _COUNT_KEYS:
                attr, value = _COUNT_KEYS[key], int(raw)
            else:
                known = ", ".join(sorted({**_PROBABILITY_KEYS, **_COUNT_KEYS}))
                raise FaultError(f"unknown fault channel {key!r} (known: {known})")
            if attr in values:
                raise FaultError(f"fault channel {key!r} given twice")
            values[attr] = value
        return cls(**values)

    def format(self) -> str:
        """Render back to the spec grammar (only non-default clauses)."""
        reverse = {attr: key for key, attr in (_PROBABILITY_KEYS | _COUNT_KEYS).items()}
        default = FaultSpec()
        clauses = [
            f"{reverse[f.name]}={getattr(self, f.name)}"
            for f in fields(self)
            if getattr(self, f.name) != getattr(default, f.name)
        ]
        return ",".join(clauses)
