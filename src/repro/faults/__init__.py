"""Deterministic fault injection and graceful degradation.

A :class:`FaultSpec` names the faults a run should suffer (parsed from a
``--faults`` spec string); a :class:`FaultPlan` binds a spec to a seed so
every individual fault decision — which weekly scans drop, which sensor
windows go dark, which worker tasks crash — is a pure function of
``(seed, spec)`` and therefore fully reproducible.  ``apply_faults``
derives the degraded input bundle up front, and the execution backends
consult the same plan for live worker faults, retrying them with bounded
exponential backoff so an injected crash degrades a run instead of
aborting it.  Every loss lands in the :class:`DataQuality` ledger, which
the run manifest exports as its ``data_quality`` section.

The invariant the golden-report tests pin down: an **empty plan is
byte-identical to no plan at all**, on both backends.
"""

from repro.faults.errors import (
    FaultError,
    InjectedWorkerCrash,
    RetryBudgetExceeded,
    WorkerFault,
)
from repro.faults.inject import apply_faults
from repro.faults.plan import FaultClock, FaultPlan
from repro.faults.quality import DataQuality, format_data_quality
from repro.faults.spec import FaultSpec

__all__ = [
    "DataQuality",
    "FaultClock",
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "InjectedWorkerCrash",
    "RetryBudgetExceeded",
    "WorkerFault",
    "apply_faults",
    "format_data_quality",
]
