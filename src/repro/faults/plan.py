"""Deterministic fault plans.

A :class:`FaultPlan` is the pair ``(seed, spec)``: the spec names how
hard each channel is degraded, the seed fixes *which* concrete scans,
records, prefixes, and worker chunks are hit.  Every decision is a
stateless draw from a keyed hash over the decision's own identity (a
scan date, a record key, a chunk token), so:

* the same ``(seed, spec)`` always yields the same plan — regardless of
  evaluation order, backend, or sharding;
* raising a channel's probability strictly grows the set of faults it
  fires (the per-identity draw is fixed; only the threshold moves),
  which is what makes degradation monotone in the fault rate.

:class:`FaultClock` is the draw source plus per-channel monotone tick
counters for sequenced events (blackout windows, retry accounting).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from datetime import date, timedelta
from typing import TYPE_CHECKING

from repro.faults.spec import FaultSpec
from repro.net.timeline import DateInterval

if TYPE_CHECKING:
    from repro.scan.annotate import AnnotatedScanRecord

#: Injected worker-fault kinds, as shipped to ``kernels.run_chunk``.
CRASH = "crash"
SLOW = "slow"


class FaultClock:
    """Keyed deterministic randomness plus per-channel tick counters."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._key = (seed & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big")
        self._ticks: dict[str, int] = {}

    def uniform(self, channel: str, *tokens: object) -> float:
        """A fixed draw in [0, 1) for this (channel, identity) pair."""
        message = "|".join([channel, *map(str, tokens)]).encode("utf-8")
        digest = hashlib.blake2b(message, digest_size=8, key=self._key).digest()
        return int.from_bytes(digest, "big") / 2**64

    def fires(self, channel: str, probability: float, *tokens: object) -> bool:
        """Bernoulli(probability) on the fixed draw — monotone in p."""
        return probability > 0.0 and self.uniform(channel, *tokens) < probability

    def pick(self, channel: str, n: int, *tokens: object) -> int:
        """A fixed choice from range(n)."""
        if n <= 0:
            raise ValueError(f"cannot pick from {n} options")
        return min(int(self.uniform(channel, *tokens) * n), n - 1)

    def tick(self, channel: str) -> int:
        """Monotone per-channel event counter (0, 1, 2, ...)."""
        value = self._ticks.get(channel, 0)
        self._ticks[channel] = value + 1
        return value


@dataclass(frozen=True)
class FaultPlan:
    """All fault decisions of one run, reproducible from ``(seed, spec)``."""

    spec: FaultSpec
    seed: int = 0

    @classmethod
    def from_spec(cls, spec: FaultSpec | str | None, seed: int = 0) -> FaultPlan:
        """Build a plan from a spec object or the spec grammar text."""
        if spec is None or isinstance(spec, str):
            spec = FaultSpec.parse(spec)
        return cls(spec=spec, seed=seed)

    @property
    def is_empty(self) -> bool:
        return self.spec.is_empty

    def fingerprint_payload(self) -> dict[str, object]:
        """The plan's identity as a JSON-safe dict, for cache keying.

        Every spec knob participates plus the seed — a run replayed
        under a different ``--fault-seed`` degrades different scans and
        chunks, so it must fingerprint differently.  Empty plans inject
        nothing regardless of seed (the tentpole byte-identity
        invariant), so their seed is normalized away.
        """
        spec = {f.name: getattr(self.spec, f.name) for f in fields(self.spec)}
        return {"seed": 0 if self.is_empty else self.seed, "spec": spec}

    def clock(self) -> FaultClock:
        """A fresh clock over this plan's seed (ticks start at zero)."""
        return FaultClock(self.seed)

    # -- dataset fault decisions ----------------------------------------------

    def drops_scan(self, day: date) -> bool:
        """Is this whole weekly scan lost?"""
        return self.clock().fires("scan.drop_weeks", self.spec.drop_weeks, day.toordinal())

    def drops_record(self, record: AnnotatedScanRecord) -> bool:
        """Is this per-port observation lost?"""
        return self.drops_record_fields(
            record.scan_date.toordinal(), record.ip, record.certificate.fingerprint
        )

    def drops_record_fields(
        self, date_ordinal: int, ip: str, cert_fingerprint: str
    ) -> bool:
        """:meth:`drops_record` on the record's identity fields.

        The columnar degradation path (``ScanDataset.degraded`` with
        ``drop_row``) draws the decision straight from the scan table's
        columns, so no record object is ever materialized; both entry
        points hash the identical identity and agree on every row.
        """
        return self.clock().fires(
            "scan.drop_ports",
            self.spec.drop_ports,
            date_ordinal,
            ip,
            cert_fingerprint,
        )

    def blackout_windows(self, start: date, end: date) -> tuple[DateInterval, ...]:
        """The pDNS sensor blackout windows scheduled inside [start, end]."""
        if self.spec.pdns_blackouts <= 0 or end < start:
            return ()
        clock = self.clock()
        span = (end - start).days
        duration = max(1, self.spec.pdns_blackout_days)
        windows = []
        for i in range(self.spec.pdns_blackouts):
            offset = clock.pick("pdns.blackout", max(1, span - duration + 1), i)
            first = start + timedelta(days=offset)
            last = min(end, first + timedelta(days=duration - 1))
            windows.append(DateInterval(first, last))
        return tuple(sorted(windows, key=lambda w: (w.start, w.end)))

    def hides_prefix(self, prefix: str) -> bool:
        """Is this prefix missing from the stale routing snapshot?"""
        return self.clock().fires("routing.stale", self.spec.routing_stale, prefix)

    # -- worker fault decisions -----------------------------------------------

    def worker_fault(self, kernel: str, token: str, attempt: int) -> str | None:
        """The injected fault for one chunk attempt, or None.

        Crashes fire only on the first attempt, so a faulted chunk always
        succeeds within the retry budget and a degraded run completes.
        """
        clock = self.clock()
        if attempt == 0 and clock.fires("workers.crash", self.spec.worker_crash, kernel, token):
            return CRASH
        if clock.fires("workers.slow", self.spec.worker_slow, kernel, token, attempt):
            return f"{SLOW}:{self.spec.worker_slow_ms}"
        return None

    def backoff_seconds(self, attempt: int) -> float:
        """Exponential backoff before retry number ``attempt + 1``."""
        return (self.spec.backoff_ms / 1000.0) * (2**attempt)
