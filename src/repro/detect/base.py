"""The pluggable detector protocol.

A *detector* is any method that takes the analyst's third-party view of
the Internet — the :class:`repro.core.pipeline.PipelineInputs` bundle —
and names the domains it believes were attacked.  The paper's
retroactive funnel is one detector; the Houser-style classifier is
another; the survey literature (Zhauniarovich et al.) and CERTainty
(Tsai et al.) describe whole families more.  This module gives them one
shape so the evaluation arena can sweep them side by side:

* every detector **declares** the input channels it reads
  (:data:`INPUT_CHANNELS`); the conformance suite verifies the
  declaration is *sufficient* by stripping every undeclared channel and
  re-running detection;
* ``fit(study)`` is the optional training hook — it receives a
  simulated :class:`repro.world.sim.StudyDatasets` *with* its
  ground-truth ledger (detectors must never read ground truth inside
  ``detect``);
* ``detect(bundle)`` returns a :class:`DetectorFindings`: typed
  per-domain verdicts, each citing concrete
  :class:`repro.obs.provenance.EvidenceRef` rows, so ``repro-hunt
  explain``-style auditing works for every method, not just the funnel.

Findings round-trip through plain dictionaries (``to_dict`` /
``from_dict``) so arena cells can be cached, diffed, and committed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from repro.core.types import Verdict
from repro.obs.provenance import EvidenceRef

if TYPE_CHECKING:
    from repro.core.pipeline import PipelineInputs
    from repro.exec.backends import ExecutionBackend

#: Channels a detector may declare in ``Detector.inputs``.  ``scan`` and
#: ``periods`` are always present in a bundle; the rest are replaced by
#: empty datasets when a detector does not declare them.
INPUT_CHANNELS = ("scan", "pdns", "ct", "as2org", "routing", "geo")

#: Verdicts that count as "the detector flagged this domain".
POSITIVE_VERDICTS = frozenset({Verdict.HIJACKED, Verdict.TARGETED})


@dataclass(frozen=True, slots=True)
class DomainVerdict:
    """One detector's decision about one domain."""

    domain: str
    verdict: Verdict
    score: float = 1.0
    rationale: str = ""
    evidence: tuple[EvidenceRef, ...] = ()

    @property
    def positive(self) -> bool:
        return self.verdict in POSITIVE_VERDICTS

    def to_dict(self) -> dict[str, Any]:
        return {
            "domain": self.domain,
            "verdict": self.verdict.name,
            "score": self.score,
            "rationale": self.rationale,
            "evidence": [
                {"kind": e.kind, "ref": e.ref, "detail": e.detail}
                for e in self.evidence
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> DomainVerdict:
        return cls(
            domain=data["domain"],
            verdict=Verdict[data["verdict"]],
            score=float(data.get("score", 1.0)),
            rationale=data.get("rationale", ""),
            evidence=tuple(
                EvidenceRef(kind=e["kind"], ref=e["ref"], detail=e.get("detail", ""))
                for e in data.get("evidence", [])
            ),
        )


@dataclass(frozen=True)
class DetectorFindings:
    """Everything one detector produced over one input bundle."""

    detector: str
    verdicts: tuple[DomainVerdict, ...] = ()
    stats: tuple[tuple[str, int], ...] = ()

    def flagged(self) -> frozenset[str]:
        """Domains with a positive (HIJACKED / TARGETED) verdict."""
        return frozenset(v.domain for v in self.verdicts if v.positive)

    def verdict_for(self, domain: str) -> DomainVerdict | None:
        for verdict in self.verdicts:
            if verdict.domain == domain:
                return verdict
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "detector": self.detector,
            "verdicts": [v.to_dict() for v in self.verdicts],
            "stats": [[name, value] for name, value in self.stats],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> DetectorFindings:
        return cls(
            detector=data["detector"],
            verdicts=tuple(
                DomainVerdict.from_dict(v) for v in data.get("verdicts", [])
            ),
            stats=tuple(
                (str(name), int(value)) for name, value in data.get("stats", [])
            ),
        )


class Detector(ABC):
    """One registered detection method.

    Subclasses set ``name`` (the registry key), ``inputs`` (the declared
    channels, a subset of :data:`INPUT_CHANNELS`), and implement
    :meth:`detect`.  Methods that train set ``requires_fit = True`` and
    implement :meth:`fit`; the arena always fits before detecting.
    Detection must be deterministic: the same bundle must produce equal
    findings on every call and under every execution backend.
    """

    #: Registry key; stable across releases (it names arena rows).
    name: str = ""

    #: Channels ``detect`` reads.  The conformance suite strips every
    #: channel *not* listed here and requires detection to still work.
    inputs: tuple[str, ...] = ()

    #: True if :meth:`fit` must run before :meth:`detect`.
    requires_fit: bool = False

    def fit(self, study) -> None:
        """Train on a simulated study (ground truth available here only)."""

    @abstractmethod
    def detect(
        self, bundle: PipelineInputs, backend: ExecutionBackend | None = None
    ) -> DetectorFindings:
        """Run detection over the bundle; backend is optional fan-out."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} inputs={self.inputs}>"


def restrict_inputs(bundle: PipelineInputs, channels: tuple[str, ...]) -> PipelineInputs:
    """A copy of the bundle with every undeclared channel emptied.

    ``scan`` and ``periods`` always pass through (every bundle has them);
    ``pdns`` / ``ct`` / ``as2org`` become empty datasets and ``routing``
    / ``geo`` become None unless declared.  This is how the conformance
    suite checks that a detector's declaration is sufficient.
    """
    from repro.ct.crtsh import CrtShService
    from repro.ipintel.as2org import AS2Org
    from repro.pdns.database import PassiveDNSDatabase

    unknown = [c for c in channels if c not in INPUT_CHANNELS]
    if unknown:
        raise ValueError(
            f"unknown input channels {unknown!r} (expected among {INPUT_CHANNELS})"
        )
    changes: dict[str, Any] = {}
    if "pdns" not in channels:
        changes["pdns"] = PassiveDNSDatabase()
    if "ct" not in channels:
        changes["crtsh"] = CrtShService()
    if "as2org" not in channels:
        changes["as2org"] = AS2Org()
    if "routing" not in channels:
        changes["routing"] = None
    if "geo" not in channels:
        changes["geo"] = None
    return replace(bundle, **changes)


__all__ = [
    "INPUT_CHANNELS",
    "POSITIVE_VERDICTS",
    "Detector",
    "DetectorFindings",
    "DomainVerdict",
    "restrict_inputs",
]
