"""Adapters: the existing methods as registered detectors.

The paper's retroactive funnel and the Houser-style logistic-regression
baseline predate the detector protocol; these adapters wrap them so
they compete in the arena as peers — no privileged code path, the same
``DetectorFindings`` contract, the same scoring.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.types import Verdict
from repro.detect.base import Detector, DetectorFindings, DomainVerdict
from repro.obs.provenance import EvidenceRef

if TYPE_CHECKING:
    from repro.core.pipeline import PipelineInputs
    from repro.exec.backends import ExecutionBackend


class FunnelDetector(Detector):
    """The paper's five-step retroactive funnel, behind the protocol.

    Runs the full :class:`repro.core.pipeline.HijackPipeline` over the
    bundle (fault-free: the arena degrades inputs *before* detectors see
    them, so every method faces the same data) and converts each
    :class:`DomainFinding` into a verdict carrying the finding's whole
    provenance trail as flattened evidence refs.
    """

    name = "funnel"
    inputs = ("scan", "pdns", "ct", "as2org", "routing", "geo")

    def __init__(self, config=None) -> None:
        self._config = config

    def detect(
        self, bundle: PipelineInputs, backend: ExecutionBackend | None = None
    ) -> DetectorFindings:
        from repro.core.pipeline import HijackPipeline

        report = HijackPipeline(bundle, config=self._config).run(backend)
        verdicts = tuple(
            DomainVerdict(
                domain=finding.domain,
                verdict=finding.verdict,
                score=1.0,
                rationale=(
                    f"funnel {finding.detection.value}"
                    if finding.detection
                    else "funnel"
                ),
                evidence=tuple(
                    ref
                    for transition in finding.provenance
                    for ref in transition.evidence
                ),
            )
            for finding in report.findings
        )
        funnel = report.funnel
        return DetectorFindings(
            detector=self.name,
            verdicts=verdicts,
            stats=(
                ("maps", funnel.n_maps),
                ("transient", funnel.n_transient),
                ("shortlisted", funnel.n_shortlisted),
                ("hijacked", funnel.n_hijacked),
                ("targeted", funnel.n_targeted),
            ),
        )


class LogRegDetector(Detector):
    """The Houser-style pDNS/scan-feature classifier, behind the protocol.

    ``fit`` trains the numpy logistic regression on the study's ground
    truth (positives are attack periods, negatives sampled benign maps);
    ``detect`` then scores every (domain, period) of the *bundle* —
    which may be a different, degraded, or restricted view — and flags
    domains crossing the decision threshold in any period.
    """

    name = "logreg"
    inputs = ("scan", "pdns")
    requires_fit = True

    def __init__(self, threshold: float = 0.5, seed: int = 11) -> None:
        self._threshold = threshold
        self._seed = seed
        self._model = None

    def fit(self, study) -> None:
        from repro.baseline.model import train_baseline

        trained = train_baseline(
            study.scan, study.pdns, study.periods, study.ground_truth,
            seed=self._seed,
        )
        self._model = trained.model

    def detect(
        self, bundle: PipelineInputs, backend: ExecutionBackend | None = None
    ) -> DetectorFindings:
        import numpy as np

        from repro.baseline.features import domain_features

        if self._model is None:
            raise RuntimeError(
                "LogRegDetector.detect called before fit(); train it on a "
                "study first (the arena does this automatically)"
            )
        verdicts: list[DomainVerdict] = []
        n_scored = 0
        for domain in sorted(bundle.scan.domains()):
            best_score = 0.0
            best_period = None
            for period in bundle.periods:
                if not bundle.scan.scan_dates_in(period):
                    continue
                features = np.array(
                    [domain_features(domain, bundle.scan, bundle.pdns, period)]
                )
                probability = float(self._model.predict_proba(features)[0])
                n_scored += 1
                if probability > best_score:
                    best_score = probability
                    best_period = period
            if best_period is not None and best_score >= self._threshold:
                verdicts.append(
                    DomainVerdict(
                        domain=domain,
                        verdict=Verdict.HIJACKED,
                        score=round(best_score, 6),
                        rationale=(
                            f"classifier probability {best_score:.3f} >= "
                            f"{self._threshold} in period {best_period.index}"
                        ),
                        evidence=(
                            EvidenceRef(
                                kind="rule",
                                ref="logreg-threshold",
                                detail=(
                                    f"p={best_score:.3f} "
                                    f"period={best_period.label}"
                                ),
                            ),
                        ),
                    )
                )
        return DetectorFindings(
            detector=self.name,
            verdicts=tuple(verdicts),
            stats=(
                ("domains", len(bundle.scan.domains())),
                ("pairs_scored", n_scored),
                ("flagged", len(verdicts)),
            ),
        )


__all__ = ["FunnelDetector", "LogRegDetector"]
