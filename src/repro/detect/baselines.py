"""New baseline detectors built directly on the protocol.

Three methods from the comparison literature, each reading a different
slice of the analyst's view:

* :class:`CertAnomalyDetector` — CERTainty-style certificate-feature
  rules: a CT-logged certificate covering a sensitive name, issued by a
  CA the domain's stable scan history never used, is treated as a
  hijack artifact;
* :class:`PdnsChurnDetector` — resolution-churn rules: a short-lived
  pDNS row intruding on an otherwise stable rrset is treated as a
  temporary redirection;
* :class:`NaiveTransientDetector` — the existing steps-1-2 ablation
  (:func:`repro.baseline.naive.flag_all_transients`) behind the
  protocol, as the floor every smarter method should beat.

All three are deterministic rule sets — no training — so
``requires_fit`` stays False and arena runs are reproducible by
construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.types import Verdict
from repro.detect.base import Detector, DetectorFindings, DomainVerdict
from repro.net.names import is_sensitive_name
from repro.obs.provenance import EvidenceRef

if TYPE_CHECKING:
    from repro.core.pipeline import PipelineInputs
    from repro.exec.backends import ExecutionBackend


class CertAnomalyDetector(Detector):
    """Certificate-feature rules in the spirit of CERTainty (Tsai et al.).

    For each domain, the scan history establishes which CAs its real
    operators use: an issuer is *established* once its certificates were
    observed deployed on ``established_scans`` or more distinct scan
    dates.  Any CT-logged certificate that (a) covers a sensitive name
    (mail/webmail/vpn/...) and (b) comes from an issuer outside the
    established set is flagged as an anomalous issuance.
    """

    name = "cert-anomaly"
    inputs = ("scan", "ct")

    def __init__(self, established_scans: int = 3) -> None:
        self._established_scans = established_scans

    def detect(
        self, bundle: PipelineInputs, backend: ExecutionBackend | None = None
    ) -> DetectorFindings:
        verdicts: list[DomainVerdict] = []
        n_ct_entries = 0
        n_anomalous = 0
        for domain in sorted(bundle.scan.domains()):
            seen_dates_by_issuer: dict[str, set] = {}
            for record in bundle.scan.records_for(domain):
                seen_dates_by_issuer.setdefault(
                    record.certificate.issuer, set()
                ).add(record.scan_date)
            established = {
                issuer
                for issuer, dates in seen_dates_by_issuer.items()
                if len(dates) >= self._established_scans
            }
            evidence: list[EvidenceRef] = []
            for entry in bundle.crtsh.search(domain):
                n_ct_entries += 1
                cert = entry.certificate
                if cert.issuer in established:
                    continue
                sensitive = [s for s in cert.sans if is_sensitive_name(s)]
                if not sensitive:
                    continue
                n_anomalous += 1
                evidence.append(
                    EvidenceRef(
                        kind="ct",
                        ref=f"crtsh:{entry.crtsh_id}",
                        detail=(
                            f"issuer {cert.issuer!r} not established; "
                            f"sensitive SAN {sensitive[0]}"
                        ),
                    )
                )
            if evidence:
                verdicts.append(
                    DomainVerdict(
                        domain=domain,
                        verdict=Verdict.TARGETED,
                        score=1.0,
                        rationale=(
                            f"{len(evidence)} sensitive-SAN certificate(s) "
                            "from non-established issuer(s)"
                        ),
                        evidence=tuple(evidence),
                    )
                )
        return DetectorFindings(
            detector=self.name,
            verdicts=tuple(verdicts),
            stats=(
                ("domains", len(bundle.scan.domains())),
                ("ct_entries", n_ct_entries),
                ("anomalous_certs", n_anomalous),
                ("flagged", len(verdicts)),
            ),
        )


class PdnsChurnDetector(Detector):
    """Resolution-churn rules over the passive-DNS aggregate.

    For each (rrname, rrtype) the domain exposes, the long-lived rows
    (span >= ``stable_min_days``) define the stable rdata set.  A
    short-lived row (span <= ``churn_max_days``) whose rdata is *not*
    in that stable set is an interloper — the shape a temporary
    redirection of an otherwise healthy name leaves behind.  Domains
    with any interloper on an rrset that does have a stable baseline
    are flagged.
    """

    name = "pdns-churn"
    inputs = ("scan", "pdns")

    def __init__(
        self, stable_min_days: int = 60, churn_max_days: int = 14
    ) -> None:
        self._stable_min_days = stable_min_days
        self._churn_max_days = churn_max_days

    def detect(
        self, bundle: PipelineInputs, backend: ExecutionBackend | None = None
    ) -> DetectorFindings:
        verdicts: list[DomainVerdict] = []
        n_rows = 0
        n_interlopers = 0
        for domain in sorted(bundle.scan.domains()):
            rows = bundle.pdns.query_domain(domain)
            n_rows += len(rows)
            by_rrset: dict[tuple[str, str], list] = {}
            for row in rows:
                by_rrset.setdefault((row.rrname, row.rtype.value), []).append(row)
            evidence: list[EvidenceRef] = []
            for (rrname, rtype), group in sorted(by_rrset.items()):
                stable = {
                    row.rdata
                    for row in group
                    if row.span_days >= self._stable_min_days
                }
                if not stable:
                    continue  # no baseline to deviate from
                for row in group:
                    if row.span_days > self._churn_max_days:
                        continue
                    if row.rdata in stable:
                        continue
                    n_interlopers += 1
                    evidence.append(
                        EvidenceRef(
                            kind="pdns",
                            ref=f"{rrname} {rtype} {row.rdata}",
                            detail=(
                                f"{row.span_days}d interloper vs "
                                f"{len(stable)} stable value(s)"
                            ),
                        )
                    )
            if evidence:
                verdicts.append(
                    DomainVerdict(
                        domain=domain,
                        verdict=Verdict.HIJACKED,
                        score=1.0,
                        rationale=(
                            f"{len(evidence)} short-lived interloper row(s) "
                            "against stable rrsets"
                        ),
                        evidence=tuple(evidence),
                    )
                )
        return DetectorFindings(
            detector=self.name,
            verdicts=tuple(verdicts),
            stats=(
                ("domains", len(bundle.scan.domains())),
                ("pdns_rows", n_rows),
                ("interlopers", n_interlopers),
                ("flagged", len(verdicts)),
            ),
        )


class NaiveTransientDetector(Detector):
    """Every transient deployment is an incident (funnel steps 1-2 only).

    Reuses :func:`repro.baseline.naive.flag_all_transients`, so the
    arena row for this detector is exactly the ablation the naive
    module already measures — now scored by the same scorer as
    everything else.
    """

    name = "naive-transients"
    inputs = ("scan",)

    def detect(
        self, bundle: PipelineInputs, backend: ExecutionBackend | None = None
    ) -> DetectorFindings:
        from repro.baseline.naive import flag_all_transients

        result = flag_all_transients(bundle.scan, bundle.periods)
        verdicts = tuple(
            DomainVerdict(
                domain=domain,
                verdict=Verdict.HIJACKED,
                score=1.0,
                rationale="transient deployment observed (no corroboration)",
                evidence=(
                    EvidenceRef(
                        kind="rule",
                        ref="all-transients",
                        detail="steps 1-2 ablation",
                    ),
                ),
            )
            for domain in sorted(result.flagged)
        )
        return DetectorFindings(
            detector=self.name,
            verdicts=verdicts,
            stats=(
                ("domains", len(bundle.scan.domains())),
                ("flagged", len(verdicts)),
            ),
        )


__all__ = [
    "CertAnomalyDetector",
    "PdnsChurnDetector",
    "NaiveTransientDetector",
]
