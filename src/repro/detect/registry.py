"""The detector registry.

Detectors register under a stable name — either with the
:func:`register` decorator (in-process, how the built-ins register when
``repro.detect`` imports) or through the ``repro.detectors`` entry-point
group (how an external package ships one without touching this repo).
The arena and the ``repro.api`` facade enumerate the registry; nothing
in the scoring path special-cases any one method.

Registration stores a zero-argument *factory*, not an instance:
detectors may hold fitted state, so every arena cell gets a fresh one.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.detect.base import Detector

ENTRY_POINT_GROUP = "repro.detectors"

_FACTORIES: dict[str, Callable[[], Detector]] = {}
_ENTRY_POINTS_LOADED = False


def register_detector(
    name: str, factory: Callable[[], Detector], *, replace: bool = False
) -> None:
    """Register a detector factory under ``name``."""
    if not name:
        raise ValueError("detector name must be non-empty")
    if name in _FACTORIES and not replace:
        raise ValueError(f"detector {name!r} is already registered")
    _FACTORIES[name] = factory


def register(cls: type[Detector]) -> type[Detector]:
    """Class decorator: register a ``Detector`` subclass by its ``name``."""
    if not issubclass(cls, Detector):
        raise TypeError(f"{cls!r} is not a Detector subclass")
    register_detector(cls.name, cls)
    return cls


def unregister_detector(name: str) -> None:
    """Remove a registration (primarily for tests)."""
    _FACTORIES.pop(name, None)


def list_detectors() -> tuple[str, ...]:
    """Registered detector names, sorted."""
    _load_entry_points()
    return tuple(sorted(_FACTORIES))


def create_detector(name: str) -> Detector:
    """Instantiate a fresh detector by registry name."""
    _load_entry_points()
    factory = _FACTORIES.get(name)
    if factory is None:
        known = ", ".join(sorted(_FACTORIES)) or "none"
        raise KeyError(f"unknown detector {name!r} (registered: {known})")
    detector = factory()
    if not isinstance(detector, Detector):
        raise TypeError(
            f"factory for {name!r} returned {type(detector).__name__}, "
            "not a Detector"
        )
    return detector


def create_detectors(names: Iterable[str] | None = None) -> list[Detector]:
    """Fresh instances for ``names`` (default: every registered detector)."""
    selected = list(names) if names is not None else list(list_detectors())
    return [create_detector(name) for name in selected]


def _load_entry_points() -> None:
    """Fold in third-party detectors published as package entry points.

    Loaded lazily and once; a broken third-party registration must not
    take the built-ins down with it, so failures are swallowed per
    entry point.
    """
    global _ENTRY_POINTS_LOADED
    if _ENTRY_POINTS_LOADED:
        return
    _ENTRY_POINTS_LOADED = True
    try:
        from importlib.metadata import entry_points

        for entry in entry_points(group=ENTRY_POINT_GROUP):
            if entry.name in _FACTORIES:
                continue
            try:
                register_detector(entry.name, entry.load())
            except Exception:  # pragma: no cover - depends on environment
                continue
    except Exception:  # pragma: no cover - importlib.metadata missing
        pass


__all__ = [
    "ENTRY_POINT_GROUP",
    "create_detector",
    "create_detectors",
    "list_detectors",
    "register",
    "register_detector",
    "unregister_detector",
]
