"""The cross-scenario evaluation arena.

The arena is the scenario-diversity counterpart to ``BENCH_perf.json``:
it sweeps every registered detector across the registered scenario
packs — optionally through a fault plan, so methods are compared on the
*same* degraded view — and scores each (pack, detector) cell against
the pack's ground-truth ledger.  One committed ``BENCH_arena.json``
records the leaderboard of record.

Mechanically each pack is one :class:`repro.exec.PipelineExecutor` run:
every detector is a :class:`repro.exec.Stage` whose product is its
serialized :class:`DetectorFindings`, so arena cells ride the existing
stage cache (same spec + same inputs = cache hit, findings restored
without re-running detection) and every pack gets a standard run
manifest.

Scoring is set-based — flagged domains against the ledger — and lives
here, in one place: :func:`score_sets` is also what the deprecated
``repro.baseline.compare_methods`` shim delegates to.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.detect.base import DetectorFindings, restrict_inputs
from repro.detect.registry import create_detector, list_detectors
from repro.exec.metrics import RunMetrics, StageStats
from repro.exec.stage import Stage, StageContext

if TYPE_CHECKING:
    from repro.cache.store import StageCache
    from repro.exec.backends import ExecutionBackend
    from repro.obs.ledger import RunLedger

ARENA_SCHEMA = "repro.bench.arena/1"


# -- scoring -------------------------------------------------------------------


@dataclass(frozen=True)
class DetectorScore:
    """Set-based precision/recall of one method on one scenario."""

    method: str
    precision: float
    recall: float
    tp: int = 0
    fp: int = 0
    fn: int = 0
    n_flagged: int = 0
    n_truth: int = 0

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def score_sets(
    method: str, flagged: Iterable[str], truth: Iterable[str]
) -> DetectorScore:
    """Score a flagged-domain set against a ground-truth set.

    Conventions match the historical ``compare_methods``: an empty
    flagged set has precision 1.0 (no false claims were made), an empty
    truth set has recall 1.0 (nothing was there to find).
    """
    flagged_set = frozenset(flagged)
    truth_set = frozenset(truth)
    tp = len(flagged_set & truth_set)
    fp = len(flagged_set - truth_set)
    fn = len(truth_set - flagged_set)
    return DetectorScore(
        method=method,
        precision=tp / len(flagged_set) if flagged_set else 1.0,
        recall=tp / len(truth_set) if truth_set else 1.0,
        tp=tp,
        fp=fp,
        fn=fn,
        n_flagged=len(flagged_set),
        n_truth=len(truth_set),
    )


# -- the sweep -----------------------------------------------------------------


@dataclass(frozen=True)
class ArenaConfig:
    """The run-key configuration of one arena pack run.

    A frozen dataclass so :func:`repro.cache.derive_run_key` digests it
    per field; the detector list is part of the key because the stage
    chain (and therefore every fingerprint) depends on it.
    """

    detectors: tuple[str, ...]
    schema: str = ARENA_SCHEMA


@dataclass
class ArenaContext(StageContext):
    """One pack's shared state: the degraded bundle plus the study."""

    study: Any = None
    findings: dict[str, DetectorFindings] = field(default_factory=dict)


class DetectorStage(Stage):
    """One arena cell: fit (if needed), restrict inputs, detect."""

    parallel = False
    cache_version = 1
    config_deps = None  # the whole ArenaConfig (detector list) matters

    def __init__(self, detector_name: str) -> None:
        self.detector_name = detector_name
        self.name = f"detect:{detector_name}"
        self.products = (f"findings:{detector_name}",)

    def run(self, ctx: ArenaContext, backend: ExecutionBackend) -> StageStats:
        detector = create_detector(self.detector_name)
        fit_start = time.perf_counter()
        if detector.requires_fit:
            detector.fit(ctx.study)
        fit_seconds = time.perf_counter() - fit_start
        restricted = restrict_inputs(ctx.inputs, detector.inputs)
        detect_start = time.perf_counter()
        findings = detector.detect(restricted)
        detect_seconds = time.perf_counter() - detect_start
        ctx.findings[self.detector_name] = findings
        return StageStats(
            n_in=len(ctx.inputs.scan.domains()),
            n_out=len(findings.flagged()),
            detail={
                "fit_seconds": round(fit_seconds, 6),
                "detect_seconds": round(detect_seconds, 6),
                "inputs": list(detector.inputs),
            },
        )

    def cache_products(self, ctx: ArenaContext) -> dict[str, Any]:
        # Entries store the JSON-safe findings dict, never live objects.
        return {self.products[0]: ctx.findings[self.detector_name].to_dict()}

    def restore_products(self, ctx: ArenaContext, products: dict) -> None:
        ctx.findings[self.detector_name] = DetectorFindings.from_dict(
            products[self.products[0]]
        )


@dataclass
class ArenaCell:
    """One (pack, detector) result."""

    pack: str
    detector: str
    score: DetectorScore
    fit_seconds: float
    detect_seconds: float
    cached: bool = False
    stats: tuple[tuple[str, int], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "pack": self.pack,
            "detector": self.detector,
            "precision": round(self.score.precision, 6),
            "recall": round(self.score.recall, 6),
            "f1": round(self.score.f1, 6),
            "tp": self.score.tp,
            "fp": self.score.fp,
            "fn": self.score.fn,
            "n_flagged": self.score.n_flagged,
            "n_truth": self.score.n_truth,
            "fit_seconds": round(self.fit_seconds, 6),
            "detect_seconds": round(self.detect_seconds, 6),
            "cached": self.cached,
            "stats": [[name, value] for name, value in self.stats],
        }


@dataclass
class ArenaResult:
    """Everything one arena sweep produced."""

    packs: tuple[str, ...]
    detectors: tuple[str, ...]
    faults: str
    cells: list[ArenaCell]
    manifests: dict[str, RunMetrics]
    findings: dict[tuple[str, str], DetectorFindings]

    def cell(self, pack: str, detector: str) -> ArenaCell | None:
        for cell in self.cells:
            if cell.pack == pack and cell.detector == detector:
                return cell
        return None

    def leaderboard(self) -> list[dict[str, Any]]:
        """Per-detector means across packs, best mean F1 first."""
        rows = []
        for detector in self.detectors:
            cells = [c for c in self.cells if c.detector == detector]
            if not cells:
                continue
            n = len(cells)
            rows.append(
                {
                    "detector": detector,
                    "mean_f1": round(sum(c.score.f1 for c in cells) / n, 6),
                    "mean_precision": round(
                        sum(c.score.precision for c in cells) / n, 6
                    ),
                    "mean_recall": round(
                        sum(c.score.recall for c in cells) / n, 6
                    ),
                    "total_detect_seconds": round(
                        sum(c.detect_seconds for c in cells), 6
                    ),
                    "packs": n,
                }
            )
        rows.sort(key=lambda r: (-r["mean_f1"], r["detector"]))
        return rows


def run_arena(
    packs: Sequence[str] | None = None,
    detectors: Sequence[str] | None = None,
    *,
    seed: int | None = None,
    n_background: int | None = None,
    faults: Any = None,
    fault_seed: int = 0,
    cache: StageCache | None = None,
    studies: dict[str, Any] | None = None,
    ledger: RunLedger | None = None,
) -> ArenaResult:
    """Sweep detectors across scenario packs and score every cell.

    ``packs`` / ``detectors`` default to everything registered.  ``seed``
    and ``n_background`` override each pack's canonical defaults (so CI
    smoke runs can shrink the worlds).  ``faults`` is a fault spec
    (grammar string or parsed :class:`repro.faults.FaultSpec`) applied
    to every pack's input bundle *before* any detector sees it — one
    shared degraded view, not per-detector luck.  Passing
    ``studies`` (pack name → prebuilt ``StudyDatasets``) skips pack
    construction for those names; unknown names there need no
    registration at all.  ``ledger`` takes a
    :class:`repro.obs.RunLedger`: the sweep appends one ``arena``
    record carrying its leaderboard rows so the regression sentinel can
    watch detection quality (mean F1) drift across history.
    """
    import repro.detect  # noqa: F401  (registers the built-ins)
    from repro.core.pipeline import PipelineInputs
    from repro.faults import DataQuality, FaultPlan, apply_faults
    from repro.world.scenarios import build_pack, list_packs

    pack_names = tuple(packs) if packs is not None else tuple(list_packs())
    detector_names = (
        tuple(detectors) if detectors is not None else tuple(list_detectors())
    )
    plan = FaultPlan.from_spec(faults, seed=fault_seed)
    faults_text = plan.spec.format() if not plan.is_empty else ""
    config = ArenaConfig(detectors=detector_names)
    sweep_start = time.perf_counter()

    cells: list[ArenaCell] = []
    manifests: dict[str, RunMetrics] = {}
    all_findings: dict[tuple[str, str], DetectorFindings] = {}
    for pack in pack_names:
        if studies is not None and pack in studies:
            study = studies[pack]
        else:
            study = build_pack(pack, seed=seed, n_background=n_background)
        quality = DataQuality()
        bundle = apply_faults(PipelineInputs.from_study(study), plan, quality)
        ctx = ArenaContext(
            inputs=bundle, config=config, quality=quality, study=study
        )
        run_key = None
        if cache is not None:
            from repro.cache.fingerprint import derive_run_key

            run_key = derive_run_key(bundle, plan, config)
        from repro.exec.executor import PipelineExecutor

        executor = PipelineExecutor(
            [DetectorStage(name) for name in detector_names],
            cache=cache,
            run_key=run_key,
        )
        metrics = executor.execute(ctx)
        manifests[pack] = metrics
        truth = set(study.ground_truth.domains())
        for name in detector_names:
            findings = ctx.findings[name]
            all_findings[(pack, name)] = findings
            stage = metrics.stage(f"detect:{name}")
            detail = stage.detail if stage else {}
            cells.append(
                ArenaCell(
                    pack=pack,
                    detector=name,
                    score=score_sets(name, findings.flagged(), truth),
                    fit_seconds=float(detail.get("fit_seconds", 0.0)),
                    detect_seconds=float(detail.get("detect_seconds", 0.0)),
                    cached=bool(stage.cached) if stage else False,
                    stats=findings.stats,
                )
            )
    result = ArenaResult(
        packs=pack_names,
        detectors=detector_names,
        faults=faults_text,
        cells=cells,
        manifests=manifests,
        findings=all_findings,
    )
    if ledger is not None:
        _record_arena_run(
            ledger, result, config, plan, faults_text,
            time.perf_counter() - sweep_start,
        )
    return result


def _record_arena_run(
    ledger: RunLedger,
    result: ArenaResult,
    config: ArenaConfig,
    plan: Any,
    faults_text: str,
    wall_seconds: float,
) -> None:
    """Append the sweep's ledger record; failures never fail the sweep."""
    import logging

    try:
        from repro.cache.fingerprint import config_digest
        from repro.obs.ledger import arena_record, data_fault_digest, ledger_key

        cfg_digest = config_digest(config)
        faults_digest = data_fault_digest(plan)
        label = "arena:" + ",".join(result.packs)
        record = arena_record(
            key=ledger_key(
                "arena",
                label,
                config_digest=cfg_digest,
                faults_digest=faults_digest,
                backend="serial",
                jobs=1,
            ),
            label=label,
            leaderboard=result.leaderboard(),
            wall_seconds=wall_seconds,
            config_digest=cfg_digest,
            faults_digest=faults_digest,
            faults=faults_text,
        )
        ledger.append(record)
    except Exception:
        logging.getLogger("repro.detect.arena").warning(
            "ledger: failed to record arena run", exc_info=True
        )


# -- the committed summary -----------------------------------------------------


def arena_summary(result: ArenaResult) -> dict[str, Any]:
    """The ``BENCH_arena.json`` payload for one sweep."""
    return {
        "schema": ARENA_SCHEMA,
        "python": ".".join(str(v) for v in sys.version_info[:3]),
        "packs": list(result.packs),
        "detectors": list(result.detectors),
        "faults": result.faults,
        "leaderboard": result.leaderboard(),
        "cells": [cell.to_dict() for cell in result.cells],
        "manifests": {
            pack: manifest.to_dict()
            for pack, manifest in sorted(result.manifests.items())
        },
    }


def write_arena_summary(result: ArenaResult, path: str | Path) -> dict[str, Any]:
    """Write the summary JSON and return the payload."""
    import json

    payload = arena_summary(result)
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def validate_arena_summary(payload: dict[str, Any]) -> list[str]:
    """Schema-check a ``BENCH_arena.json`` payload; returns problems.

    Used by CI: an empty list means the file is well-formed.
    """
    problems: list[str] = []
    if payload.get("schema") != ARENA_SCHEMA:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {ARENA_SCHEMA!r}"
        )
    for key in ("python", "packs", "detectors", "leaderboard", "cells", "manifests"):
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    cell_keys = {
        "pack", "detector", "precision", "recall", "f1",
        "tp", "fp", "fn", "n_flagged", "n_truth",
        "fit_seconds", "detect_seconds", "cached",
    }
    for index, cell in enumerate(payload.get("cells", [])):
        missing = cell_keys - set(cell)
        if missing:
            problems.append(f"cell {index} missing {sorted(missing)}")
            continue
        for rate in ("precision", "recall", "f1"):
            value = cell[rate]
            if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
                problems.append(
                    f"cell {index} ({cell['pack']}/{cell['detector']}): "
                    f"{rate}={value!r} out of [0, 1]"
                )
    expected = {
        (pack, detector)
        for pack in payload.get("packs", [])
        for detector in payload.get("detectors", [])
    }
    present = {
        (c.get("pack"), c.get("detector")) for c in payload.get("cells", [])
    }
    for pack, detector in sorted(expected - present):
        problems.append(f"missing cell for pack={pack!r} detector={detector!r}")
    for pack in payload.get("packs", []):
        if pack not in payload.get("manifests", {}):
            problems.append(f"missing run manifest for pack {pack!r}")
    return problems


def format_arena(result: ArenaResult) -> str:
    """Render a sweep as the leaderboard plus the per-cell table."""
    lines = []
    faults = f" faults={result.faults!r}" if result.faults else ""
    lines.append(
        f"arena: {len(result.detectors)} detectors x "
        f"{len(result.packs)} packs{faults}"
    )
    lines.append("")
    header = (
        f"{'detector':<18} {'mean F1':>8} {'mean P':>8} {'mean R':>8} "
        f"{'detect s':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in result.leaderboard():
        lines.append(
            f"{row['detector']:<18} {row['mean_f1']:>8.3f} "
            f"{row['mean_precision']:>8.3f} {row['mean_recall']:>8.3f} "
            f"{row['total_detect_seconds']:>9.3f}"
        )
    lines.append("")
    header = (
        f"{'pack':<12} {'detector':<18} {'P':>6} {'R':>6} {'F1':>6} "
        f"{'TP':>4} {'FP':>4} {'FN':>4} {'detect':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for cell in result.cells:
        suffix = " (cached)" if cell.cached else ""
        lines.append(
            f"{cell.pack:<12} {cell.detector:<18} "
            f"{cell.score.precision:>6.2f} {cell.score.recall:>6.2f} "
            f"{cell.score.f1:>6.2f} {cell.score.tp:>4} {cell.score.fp:>4} "
            f"{cell.score.fn:>4} {cell.detect_seconds:>8.3f}s{suffix}"
        )
    return "\n".join(lines)


__all__ = [
    "ARENA_SCHEMA",
    "ArenaCell",
    "ArenaConfig",
    "ArenaContext",
    "ArenaResult",
    "DetectorScore",
    "DetectorStage",
    "arena_summary",
    "format_arena",
    "run_arena",
    "score_sets",
    "validate_arena_summary",
    "write_arena_summary",
]
