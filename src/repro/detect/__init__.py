"""Pluggable detection methods and the cross-scenario evaluation arena.

Importing this package registers the five built-in detectors:

========================  =========================================
``funnel``                the paper's five-step retroactive funnel
``logreg``                Houser-style pDNS/scan-feature classifier
``cert-anomaly``          CERTainty-style certificate-feature rules
``pdns-churn``            passive-DNS resolution-churn rules
``naive-transients``      steps-1-2 ablation (every transient flags)
========================  =========================================

Third parties add their own through :func:`register_detector` or the
``repro.detectors`` entry-point group.  ``repro.detect.arena`` sweeps
whatever is registered across the scenario packs.
"""

from repro.detect.adapters import FunnelDetector, LogRegDetector
from repro.detect.base import (
    INPUT_CHANNELS,
    POSITIVE_VERDICTS,
    Detector,
    DetectorFindings,
    DomainVerdict,
    restrict_inputs,
)
from repro.detect.baselines import (
    CertAnomalyDetector,
    NaiveTransientDetector,
    PdnsChurnDetector,
)
from repro.detect.registry import (
    ENTRY_POINT_GROUP,
    create_detector,
    create_detectors,
    list_detectors,
    register,
    register_detector,
    unregister_detector,
)

for _builtin in (
    FunnelDetector,
    LogRegDetector,
    CertAnomalyDetector,
    PdnsChurnDetector,
    NaiveTransientDetector,
):
    register_detector(_builtin.name, _builtin, replace=True)
del _builtin

__all__ = [
    "ENTRY_POINT_GROUP",
    "INPUT_CHANNELS",
    "POSITIVE_VERDICTS",
    "CertAnomalyDetector",
    "Detector",
    "DetectorFindings",
    "DomainVerdict",
    "FunnelDetector",
    "LogRegDetector",
    "NaiveTransientDetector",
    "PdnsChurnDetector",
    "create_detector",
    "create_detectors",
    "list_detectors",
    "register",
    "register_detector",
    "restrict_inputs",
    "unregister_detector",
]
