"""The weekly scan engine.

Visits every endpoint in the host population on each scan date and
records the certificate returned.  Noise is deterministic per (seed, ip,
date): a host either answers the whole scan or is down for it, plus a
small independent per-port loss — so repeated runs are reproducible and
a domain's presence pattern does not depend on iteration order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from datetime import date

from repro.scan.host import HostPopulation
from repro.tls.certificate import Certificate


@dataclass(frozen=True, slots=True)
class RawScanObservation:
    """One (scan-date, endpoint, certificate) hit."""

    scan_date: date
    ip: str
    port: int
    certificate: Certificate


def _unit_hash(seed: int, *parts: str) -> float:
    """Deterministic uniform-[0,1) draw keyed by arbitrary strings."""
    digest = hashlib.sha256(("|".join((str(seed),) + parts)).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class ScanEngine:
    """Deterministic weekly scanner over a host population."""

    def __init__(
        self,
        hosts: HostPopulation,
        seed: int = 0,
        port_loss: float = 0.02,
    ) -> None:
        if not 0.0 <= port_loss < 1.0:
            raise ValueError("port_loss must be in [0, 1)")
        self._hosts = hosts
        self._seed = seed
        self._port_loss = port_loss

    def host_responsive(self, ip: str, scan_date: date) -> bool:
        reliability = self._hosts.reliability_of(ip)
        if reliability >= 1.0:
            return True
        return _unit_hash(self._seed, "host", ip, scan_date.isoformat()) < reliability

    def _port_answers(self, ip: str, port: int, scan_date: date) -> bool:
        if self._port_loss <= 0.0:
            return True
        draw = _unit_hash(self._seed, "port", ip, str(port), scan_date.isoformat())
        return draw >= self._port_loss

    def scan(self, scan_date: date) -> list[RawScanObservation]:
        """One full sweep of the population on ``scan_date``."""
        observations: list[RawScanObservation] = []
        down_hosts: set[str] = set()
        up_hosts: set[str] = set()
        for ip, port in self._hosts.endpoints():
            if ip in down_hosts:
                continue
            if ip not in up_hosts:
                if self.host_responsive(ip, scan_date):
                    up_hosts.add(ip)
                else:
                    down_hosts.add(ip)
                    continue
            certs = self._hosts.serving_all(ip, port, scan_date)
            if not certs:
                continue
            if not self._port_answers(ip, port, scan_date):
                continue
            for cert in certs:
                observations.append(RawScanObservation(scan_date, ip, port, cert))
        return observations

    def run(self, scan_dates: tuple[date, ...]) -> list[RawScanObservation]:
        """Sweep every scan date in order."""
        observations: list[RawScanObservation] = []
        for scan_date in scan_dates:
            observations.extend(self.scan(scan_date))
        return observations


def certificate_of(observation: RawScanObservation) -> Certificate:
    """Accessor used by pipelines that only need the certificate."""
    return observation.certificate
