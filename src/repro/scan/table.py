"""Columnar struct-of-arrays storage for annotated scan records.

The paper's step 1 walks 71M-IP weekly TLS scans; at that volume a
Python object per observation is the bottleneck — for memory, for the
pickle payloads the spawn-platform process pool ships, and for the
per-period re-filtering the row-at-a-time deployment kernel did.  A
:class:`ScanTable` stores one typed-array *column* per field instead of
one :class:`~repro.scan.annotate.AnnotatedScanRecord` per row:

* plain value columns — scan-date ordinals — live in ``array`` typed
  arrays (one machine word per row);
* every repeated value — IP addresses (with their IPv4 integers),
  certificate fingerprints (with their
  :class:`~repro.tls.certificate.Certificate` objects), ASNs, country
  codes, port sets, SAN-name sets and base-domain sets — is *interned*
  once into a shared pool and referenced by a 4-byte id per row.

On top of the columns sits a CSR-style per-domain index: one
concatenated row-index array plus offsets, each domain's rows pre-sorted
by ``(scan_date, ip)`` with a parallel date-ordinal array, so "this
domain's records inside this period" is a ``bisect``-found contiguous
slice rather than a per-period linear filter — the access pattern the
deployment-map kernel clusters over directly.

Row objects still exist where the public API hands them out
(``records_for``, ``map.records``, inspection evidence): the table
materializes :class:`AnnotatedScanRecord` dataclasses *lazily* from the
columns and memoizes them, and a table built ``from_records`` seeds that
memo with the caller's own objects, so the row view is identical to what
the row-at-a-time store produced.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from datetime import date
from typing import Any, Iterable, Iterator, Sequence

from repro.net.ipv4 import ip_to_int
from repro.scan.annotate import AnnotatedScanRecord
from repro.tls.certificate import Certificate

#: Flag bits of the per-row ``flags`` column.
_TRUSTED = 1
_SENSITIVE = 2

#: Per-row columns, in declaration order (all aligned, one entry per row).
_ROW_COLUMNS = (
    "date_ord", "ip_id", "asn_id", "cert_id", "country_id",
    "ports_id", "names_id", "bases_id", "flags",
)

#: Intern pools shared between a table and everything derived from it.
_POOLS = (
    "ips", "ip_ints", "asns", "cert_fps", "certs", "countries",
    "port_sets", "name_sets", "base_sets",
)


class _Interner:
    """First-seen-order value pool: ``value -> small int id``.

    Ids are assigned in first-appearance order over the row stream, so
    two tables built from byte-identical record streams intern every
    value to the same id — which is what lets cache entries and worker
    results reference pool ids instead of repeating the values.
    """

    __slots__ = ("values", "_ids")

    def __init__(self) -> None:
        self.values: list[Any] = []
        self._ids: dict[Any, int] = {}

    def intern(self, value: Any) -> int:
        ident = self._ids.get(value)
        if ident is None:
            ident = len(self.values)
            self._ids[value] = ident
            self.values.append(value)
        return ident


def _best_effort_ip_int(ip: str) -> int:
    """The IPv4 integer of ``ip``, or 0 when it is not a dotted quad.

    The integer column is a sort/cluster accelerator, never an identity:
    row identity always goes through the interned string pool, so a
    non-canonical address only loses the fast-path int, nothing else.
    """
    try:
        return ip_to_int(ip)
    except ValueError:
        return 0


class ScanTable:
    """Struct-of-arrays store of annotated scan rows with a domain index."""

    def __init__(self) -> None:
        # -- per-row columns (aligned, one entry per record) ------------------
        self.date_ord = array("i")    # scan-date ordinal
        self.ip_id = array("I")       # -> ips / ip_ints pools
        self.asn_id = array("I")      # -> asns pool
        self.cert_id = array("I")     # -> certs / cert_fps pools
        self.country_id = array("I")  # -> countries pool
        self.ports_id = array("I")    # -> port_sets pool
        self.names_id = array("I")    # -> name_sets pool
        self.bases_id = array("I")    # -> base_sets pool
        self.flags = array("B")       # _TRUSTED | _SENSITIVE bits
        # -- shared intern pools ----------------------------------------------
        self.ips: list[str] = []
        self.ip_ints = array("I")     # IPv4 int per ips entry (0 if unparseable)
        self.asns: list[int] = []
        self.cert_fps: list[str] = []
        self.certs: list[Certificate] = []
        self.countries: list[str] = []
        self.port_sets: list[tuple[int, ...]] = []
        self.name_sets: list[tuple[str, ...]] = []
        self.base_sets: list[tuple[str, ...]] = []
        # -- CSR per-domain index (built by _build_index) ---------------------
        self.domains: tuple[str, ...] = ()
        self._dom_index: dict[str, int] = {}
        self.csr_rows = array("I")    # row indices, per domain, (date, ip)-sorted
        self.csr_dates = array("i")   # date ordinal per csr_rows entry (bisect key)
        self.csr_off = array("I", [0])
        self.dom_dates = array("i")   # per domain: unique sorted date ordinals
        self.dom_dates_off = array("I", [0])
        # -- lazy row materialization -----------------------------------------
        self._rec_cache: list[AnnotatedScanRecord | None] = []
        self._domain_records: dict[str, tuple[AnnotatedScanRecord, ...]] = {}
        # -- decode memos ------------------------------------------------------
        # Stable deployments repeat the same value sets every scan date,
        # so decoded frozensets (and date objects) are interned per
        # (pool, ids) key instead of rebuilt per deployment group.
        self._set_cache: dict[tuple[str, tuple[int, ...]], frozenset] = {}
        self._singleton_sets: dict[str, list[frozenset | None]] = {}
        self._date_cache: dict[int, date] = {}
        # Canonical id-tuple memo shared by the encode kernel: a stable
        # deployment re-emits the same content tuple every scan date, and
        # handing back one shared object lets pickle memoize repeats in
        # worker results and cache entries instead of re-serializing.
        self.id_tuples: dict[tuple[int, ...], tuple[int, ...]] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[AnnotatedScanRecord]) -> ScanTable:
        """Build the columns from row objects, keeping them as the row view."""
        table = cls()
        builder = _TableBuilder(table)
        rows = list(records)
        for record in rows:
            builder.append_record(record)
        # The caller's objects *are* the materialized rows: the row API
        # returns them unchanged, so from_records costs no object churn.
        table._rec_cache = rows
        builder.finish()
        return table

    @classmethod
    def build(cls) -> "_TableBuilder":
        """An incremental builder (used by the annotator and the loader)."""
        return _TableBuilder(cls())

    # -- size ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.date_ord)

    # -- row materialization ---------------------------------------------------

    def record(self, row: int) -> AnnotatedScanRecord:
        """The row as an :class:`AnnotatedScanRecord`, memoized per row."""
        record = self._rec_cache[row]
        if record is None:
            record = AnnotatedScanRecord(
                scan_date=self.interned_date(self.date_ord[row]),
                ip=self.ips[self.ip_id[row]],
                ports=self.port_sets[self.ports_id[row]],
                asn=self.asns[self.asn_id[row]],
                country=self.countries[self.country_id[row]],
                certificate=self.certs[self.cert_id[row]],
                trusted=bool(self.flags[row] & _TRUSTED),
                sensitive=bool(self.flags[row] & _SENSITIVE),
                names=self.name_sets[self.names_id[row]],
                base_domains=self.base_sets[self.bases_id[row]],
            )
            self._rec_cache[row] = record
        return record

    def records(self) -> list[AnnotatedScanRecord]:
        """Every row, in original dataset order."""
        return [self.record(row) for row in range(len(self))]

    def records_for(self, domain: str) -> tuple[AnnotatedScanRecord, ...]:
        """The domain's rows, (date, ip)-sorted, as a memoized tuple view."""
        view = self._domain_records.get(domain)
        if view is None:
            lo, hi = self.domain_slice(domain)
            view = tuple(self.record(self.csr_rows[i]) for i in range(lo, hi))
            self._domain_records[domain] = view
        return view

    def interned_date(self, ordinal: int) -> date:
        """The ordinal's :class:`date`, one object per distinct ordinal."""
        value = self._date_cache.get(ordinal)
        if value is None:
            value = date.fromordinal(ordinal)
            self._date_cache[ordinal] = value
        return value

    def interned_set(self, pool: str, ids: tuple[int, ...]) -> frozenset:
        """The frozenset of ``pool`` values for ``ids``, memoized.

        The decode hot path: a stable deployment resolves the same id
        tuple once per *content*, not once per (domain, date) cell.
        Singletons — the common case for certs and countries — memoize
        in a per-pool list indexed by id, skipping the tuple-key hash.
        """
        if len(ids) == 1:
            sets = self._singleton_sets.get(pool)
            if sets is None:
                sets = self._singleton_sets[pool] = []
            i = ids[0]
            if i < len(sets):
                value = sets[i]
                if value is not None:
                    return value
            else:
                sets.extend([None] * (i + 1 - len(sets)))
            value = frozenset((getattr(self, pool)[i],))
            sets[i] = value
            return value
        key = (pool, ids)
        value = self._set_cache.get(key)
        if value is None:
            values = getattr(self, pool)
            value = frozenset(values[i] for i in ids)
            self._set_cache[key] = value
        return value

    def trusted(self, row: int) -> bool:
        """The row's browser-trust flag, read straight off the column."""
        return bool(self.flags[row] & _TRUSTED)

    def sensitive(self, row: int) -> bool:
        """The row's sensitive-name flag, read straight off the column."""
        return bool(self.flags[row] & _SENSITIVE)

    # -- the CSR index ---------------------------------------------------------

    def domain_index(self, domain: str) -> int | None:
        """The domain's ordinal into ``domains``/``csr_off``, or None.

        ``domains[i]`` and CSR position ``i`` name the same domain, so
        shard workers that walk an ordinal range can index the CSR
        directly — no per-domain string lookup (and, on segment-backed
        tables, no pool pages faulted for domains they only skip over).
        """
        return self._dom_index.get(domain)

    def domain_slice(self, domain: str) -> tuple[int, int]:
        """The domain's ``[lo, hi)`` range into the CSR arrays."""
        index = self._dom_index.get(domain)
        if index is None:
            return (0, 0)
        return self.csr_off[index], self.csr_off[index + 1]

    def period_slice(self, domain: str, start: date, end: date) -> tuple[int, int]:
        """CSR sub-range of the domain's rows with ``start <= date <= end``.

        Rows are date-sorted within the domain, so the period is one
        bisect-found contiguous slice of the CSR arrays.
        """
        index = self._dom_index.get(domain)
        if index is None:
            return (0, 0)
        return self.period_slice_at(index, start, end)

    def period_slice_at(self, index: int, start: date, end: date) -> tuple[int, int]:
        """:meth:`period_slice` by domain ordinal instead of name."""
        lo, hi = self.csr_off[index], self.csr_off[index + 1]
        if lo == hi:
            return (lo, lo)
        left = bisect_left(self.csr_dates, start.toordinal(), lo, hi)
        right = bisect_right(self.csr_dates, end.toordinal(), lo, hi)
        return (left, right)

    def distinct_dates_in(self, domain: str, start: date, end: date) -> int:
        """How many distinct scan dates show the domain inside the window."""
        index = self._dom_index.get(domain)
        if index is None:
            return 0
        lo, hi = self.dom_dates_off[index], self.dom_dates_off[index + 1]
        left = bisect_left(self.dom_dates, start.toordinal(), lo, hi)
        right = bisect_right(self.dom_dates, end.toordinal(), lo, hi)
        return right - left

    def _build_index(self) -> None:
        """(Re)build the CSR per-domain index over the current columns."""
        if not self._rec_cache:
            self._rec_cache = [None] * len(self.date_ord)
        # Rows of a domain sort by (scan date, ip *string*) — the order
        # the row-at-a-time dataset produced, preserved bit for bit so
        # everything downstream (map.records, evidence, golden reports)
        # is unchanged.  The string ranks are computed once per unique
        # address, not once per row.
        ip_rank = array("I", bytes(len(self.ips) * array("I").itemsize))
        for rank, ip_id in enumerate(
            sorted(range(len(self.ips)), key=self.ips.__getitem__)
        ):
            ip_rank[ip_id] = rank
        buckets: dict[str, list[int]] = {}
        bases_id = self.bases_id
        base_sets = self.base_sets
        for row in range(len(bases_id)):
            for base in base_sets[bases_id[row]]:
                bucket = buckets.get(base)
                if bucket is None:
                    buckets[base] = [row]
                else:
                    bucket.append(row)
        self.domains = tuple(sorted(buckets))
        self._dom_index = {d: i for i, d in enumerate(self.domains)}
        date_ord = self.date_ord
        ip_id_col = self.ip_id
        csr_rows = array("I")
        csr_dates = array("i")
        csr_off = array("I", [0])
        dom_dates = array("i")
        dom_dates_off = array("I", [0])
        for domain in self.domains:
            rows = buckets[domain]
            rows.sort(key=lambda r: (date_ord[r], ip_rank[ip_id_col[r]]))
            csr_rows.extend(rows)
            previous = None
            for row in rows:
                ordinal = date_ord[row]
                csr_dates.append(ordinal)
                if ordinal != previous:
                    dom_dates.append(ordinal)
                    previous = ordinal
            csr_off.append(len(csr_rows))
            dom_dates_off.append(len(dom_dates))
        self.csr_rows = csr_rows
        self.csr_dates = csr_dates
        self.csr_off = csr_off
        self.dom_dates = dom_dates
        self.dom_dates_off = dom_dates_off

    # -- derivation ------------------------------------------------------------

    #: id column -> the pools it indexes (parallel per-id side tables).
    _ID_COLUMNS = (
        ("ip_id", ("ips", "ip_ints")),
        ("asn_id", ("asns",)),
        ("cert_id", ("cert_fps", "certs")),
        ("country_id", ("countries",)),
        ("ports_id", ("port_sets",)),
        ("names_id", ("name_sets",)),
        ("bases_id", ("base_sets",)),
    )

    def select(self, rows: Sequence[int]) -> ScanTable:
        """A new table holding only ``rows`` (in the given order).

        Only the per-row columns and the CSR index are rebuilt — no
        record objects, which is what makes fault degradation a column
        selection instead of a record rebuild.  The pools are
        *re-interned* in first-seen order over the surviving rows: every
        table's ids are thereby a pure function of its own row stream
        (what the content digest covers), so id-referencing cache
        entries stay resolvable across processes.  Values themselves are
        shared — certificates stay one object per fingerprint.
        """
        derived = ScanTable()
        derived.date_ord = array("i", (self.date_ord[row] for row in rows))
        derived.flags = array("B", (self.flags[row] for row in rows))
        for column_name, pool_names in self._ID_COLUMNS:
            source = getattr(self, column_name)
            pools = [getattr(self, name) for name in pool_names]
            remap: dict[int, int] = {}
            column = array("I")
            new_pools: list[list] = [[] for _ in pools]
            for row in rows:
                old = source[row]
                new = remap.get(old)
                if new is None:
                    new = len(remap)
                    remap[old] = new
                    for pool, new_pool in zip(pools, new_pools):
                        new_pool.append(pool[old])
                column.append(new)
            setattr(derived, column_name, column)
            for name, new_pool in zip(pool_names, new_pools):
                if name == "ip_ints":
                    setattr(derived, name, array("I", new_pool))
                else:
                    setattr(derived, name, new_pool)
        derived._rec_cache = [self._rec_cache[row] for row in rows]
        derived._build_index()
        return derived

    # -- canonical row walk ----------------------------------------------------

    def row_dicts(self, start: int = 0) -> Iterator[dict[str, Any]]:
        """Canonical per-row dicts in dataset order (digest/export walk).

        Matches the shape :mod:`repro.cache.fingerprint` feeds its
        hasher, built straight from the columns — no record objects are
        materialized.  ``start`` begins the walk at that absolute row,
        which is how the epoch overlay re-digests only the rows a delta
        appended instead of the whole dataset.
        """
        for row in range(start, len(self)):
            yield {
                "d": date.fromordinal(self.date_ord[row]).isoformat(),
                "ip": self.ips[self.ip_id[row]],
                "ports": list(self.port_sets[self.ports_id[row]]),
                "asn": self.asns[self.asn_id[row]],
                "cc": self.countries[self.country_id[row]],
                "trusted": bool(self.flags[row] & _TRUSTED),
                "sensitive": bool(self.flags[row] & _SENSITIVE),
                "names": list(self.name_sets[self.names_id[row]]),
                "base": list(self.base_sets[self.bases_id[row]]),
                "cert": self.cert_fps[self.cert_id[row]],
            }

    def column_bytes(self) -> int:
        """Approximate resident bytes of the typed-array columns."""
        total = 0
        for name in _ROW_COLUMNS + (
            "csr_rows", "csr_dates", "csr_off", "dom_dates",
            "dom_dates_off", "ip_ints",
        ):
            column = getattr(self, name)
            total += column.itemsize * len(column)
        return total

    # -- pickling --------------------------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        """Ship columns and pools; drop every lazily materialized row.

        This is the fork-CoW / spawn-initializer payload of the process
        backends: typed arrays pickle as flat bytes and every repeated
        string or certificate travels exactly once, instead of one
        object graph per record.
        """
        state = self.__dict__.copy()
        state["_rec_cache"] = None
        state["_domain_records"] = None
        state["_dom_index"] = None  # rebuilt from ``domains`` on load
        state["_set_cache"] = None
        state["_singleton_sets"] = None
        state["_date_cache"] = None
        state["id_tuples"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._rec_cache = [None] * len(self.date_ord)
        self._domain_records = {}
        self._dom_index = {d: i for i, d in enumerate(self.domains)}
        self._set_cache = {}
        self._singleton_sets = {}
        self._date_cache = {}
        self.id_tuples = {}


class _TableBuilder:
    """Appends rows to a fresh :class:`ScanTable`, interning as it goes."""

    def __init__(self, table: ScanTable) -> None:
        self.table = table
        self._ips = _Interner()
        self._asns = _Interner()
        self._certs = _Interner()
        self._countries = _Interner()
        self._ports = _Interner()
        self._names = _Interner()
        self._bases = _Interner()

    def append_record(self, record: AnnotatedScanRecord) -> None:
        self.append_row(
            record.scan_date.toordinal(),
            record.ip,
            record.asn,
            record.certificate,
            record.country,
            record.ports,
            record.names,
            record.base_domains,
            record.trusted,
            record.sensitive,
        )

    def append_row(
        self,
        date_ordinal: int,
        ip: str,
        asn: int,
        certificate: Certificate,
        country: str,
        ports: tuple[int, ...],
        names: tuple[str, ...],
        base_domains: tuple[str, ...],
        trusted: bool,
        sensitive: bool,
    ) -> None:
        table = self.table
        table.date_ord.append(date_ordinal)
        ip_id = self._ips.intern(ip)
        if ip_id == len(table.ip_ints):
            table.ip_ints.append(_best_effort_ip_int(ip))
        table.ip_id.append(ip_id)
        table.asn_id.append(self._asns.intern(asn))
        cert_id = self._certs.intern(certificate.fingerprint)
        if cert_id == len(table.certs):
            table.certs.append(certificate)
        table.cert_id.append(cert_id)
        table.country_id.append(self._countries.intern(country))
        table.ports_id.append(self._ports.intern(ports))
        table.names_id.append(self._names.intern(names))
        table.bases_id.append(self._bases.intern(base_domains))
        table.flags.append(
            (_TRUSTED if trusted else 0) | (_SENSITIVE if sensitive else 0)
        )

    def finish(self) -> ScanTable:
        """Adopt the pools and build the domain index."""
        table = self.table
        table.ips = self._ips.values
        table.asns = self._asns.values
        table.cert_fps = self._certs.values
        table.countries = self._countries.values
        table.port_sets = self._ports.values
        table.name_sets = self._names.values
        table.base_sets = self._bases.values
        table._build_index()
        return table
