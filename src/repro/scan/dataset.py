"""The annotated scan dataset (CUIDS stand-in).

Indexes annotated records by the registered domains their certificates
secure, and knows the full scan calendar, so downstream stages can ask
both "what did we see for this domain?" and "in how many scans of this
period was the domain visible at all?" — the denominator of the
shortlist's visibility check.

Storage is columnar: every dataset is backed by a
:class:`repro.scan.table.ScanTable` (struct-of-arrays columns with
shared intern pools and a CSR per-domain index), built once at
construction.  The record-object API is unchanged — ``records_for``
hands out the same (date, ip)-sorted immutable tuple views as before —
but rows are materialized lazily from the columns, per-domain counting
is a bisect over pre-sorted date ordinals, and pickling the dataset
(the process-pool spawn path) ships flat arrays plus each interned
value once instead of one object graph per record.

A dataset can also carry *known telemetry gaps*: scans that were
scheduled but lost (collector outage, injected fault).  The calendar
keeps the lost dates — period boundaries and gap indices stay anchored
to the true schedule — while ``known_missing_dates`` lets visibility
checks exclude them from their denominators instead of mistaking an
observation gap for a domain going dark.
"""

from __future__ import annotations

from datetime import date
from typing import Any, Callable, Iterable

from repro.net.timeline import Period
from repro.scan.annotate import AnnotatedScanRecord
from repro.scan.table import ScanTable


class ScanDataset:
    """All annotated records of a study, indexed for deployment mapping."""

    def __init__(
        self,
        records: list[AnnotatedScanRecord],
        scan_dates: tuple[date, ...],
        known_missing_dates: Iterable[date] = (),
    ) -> None:
        self._table = (
            records if isinstance(records, ScanTable)
            else ScanTable.from_records(records)
        )
        self.scan_dates = tuple(sorted(scan_dates))
        self.known_missing_dates = frozenset(known_missing_dates)
        # Period memos: periods are frozen (hashable) and the calendar
        # is immutable, so both date subsets are computed once per
        # period instead of once per (domain, period) presence check.
        self._period_dates: dict[Period, tuple[date, ...]] = {}
        self._period_observed: dict[Period, tuple[date, ...]] = {}

    @classmethod
    def from_table(
        cls,
        table: ScanTable,
        scan_dates: tuple[date, ...],
        known_missing_dates: Iterable[date] = (),
    ) -> ScanDataset:
        """Wrap a pre-built columnar table (annotation-time fast path)."""
        return cls(table, scan_dates, known_missing_dates)

    @property
    def table(self) -> ScanTable:
        """The columnar backing store (read-only; shared, do not mutate)."""
        return self._table

    def domains(self) -> tuple[str, ...]:
        return self._table.domains

    def records_for(self, domain: str) -> tuple[AnnotatedScanRecord, ...]:
        """The domain's records as an immutable view (do not mutate)."""
        return self._table.records_for(domain)

    def records(self) -> list[AnnotatedScanRecord]:
        return self._table.records()

    def scan_dates_in(self, period: Period) -> tuple[date, ...]:
        dates = self._period_dates.get(period)
        if dates is None:
            dates = tuple(d for d in self.scan_dates if period.contains(d))
            self._period_dates[period] = dates
        return dates

    def observed_dates_in(self, period: Period) -> tuple[date, ...]:
        """The period's scans that actually ran (known gaps excluded)."""
        dates = self._period_observed.get(period)
        if dates is None:
            dates = tuple(
                d
                for d in self.scan_dates_in(period)
                if d not in self.known_missing_dates
            )
            self._period_observed[period] = dates
        return dates

    def presence(self, domain: str, period: Period) -> float:
        """Fraction of the period's *observed* scans showing the domain.

        Known-missing scans are excluded from the denominator: a scan
        that never ran says nothing about the domain's visibility.
        With no known gaps this is exactly the naive ratio.
        """
        dates_in_period = self.observed_dates_in(period)
        if not dates_in_period:
            return 0.0
        seen = self._table.distinct_dates_in(domain, period.start, period.end)
        return seen / len(dates_in_period)

    def degraded(
        self,
        drop_dates: Iterable[date] = (),
        drop_record: Callable[[AnnotatedScanRecord], bool] | None = None,
        *,
        drop_row: Callable[[int, str, str], bool] | None = None,
    ) -> ScanDataset:
        """Derive a dataset with known telemetry gaps.

        ``drop_dates`` removes whole weekly scans (recorded in
        ``known_missing_dates``); ``drop_record`` removes individual
        per-port observations.  ``drop_row`` is the columnar equivalent
        of ``drop_record`` — called with ``(date_ordinal, ip,
        cert_fingerprint)`` straight from the columns, so no record
        objects are materialized (the fault injector uses this).  The
        scan calendar is preserved so period boundaries and
        deployment-gap indices stay on the true schedule.
        """
        calendar = set(self.scan_dates)
        missing = frozenset(d for d in drop_dates if d in calendar)
        missing_ords = {d.toordinal() for d in missing}
        table = self._table
        date_ord = table.date_ord
        kept: list[int] = []
        for row in range(len(table)):
            if date_ord[row] in missing_ords:
                continue
            if drop_row is not None and drop_row(
                date_ord[row],
                table.ips[table.ip_id[row]],
                table.cert_fps[table.cert_id[row]],
            ):
                continue
            if drop_record is not None and drop_record(table.record(row)):
                continue
            kept.append(row)
        return ScanDataset.from_table(
            table.select(kept),
            self.scan_dates,
            known_missing_dates=self.known_missing_dates | missing,
        )

    def __len__(self) -> int:
        return len(self._table)

    # -- pickling --------------------------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        # Period memos are cheap to rebuild and the content digest stays
        # valid (datasets are never mutated in place) — ship the
        # columnar table, the calendar, and the digest memo only.
        state = self.__dict__.copy()
        state["_period_dates"] = None
        state["_period_observed"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._period_dates = {}
        self._period_observed = {}
