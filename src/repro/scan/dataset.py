"""The annotated scan dataset (CUIDS stand-in).

Indexes annotated records by the registered domains their certificates
secure, and knows the full scan calendar, so downstream stages can ask
both "what did we see for this domain?" and "in how many scans of this
period was the domain visible at all?" — the denominator of the
shortlist's visibility check.
"""

from __future__ import annotations

from datetime import date

from repro.net.timeline import Period
from repro.scan.annotate import AnnotatedScanRecord


class ScanDataset:
    """All annotated records of a study, indexed for deployment mapping."""

    def __init__(
        self,
        records: list[AnnotatedScanRecord],
        scan_dates: tuple[date, ...],
    ) -> None:
        self._records = list(records)
        self.scan_dates = tuple(sorted(scan_dates))
        self._by_domain: dict[str, list[AnnotatedScanRecord]] = {}
        for record in self._records:
            for base in record.base_domains:
                self._by_domain.setdefault(base, []).append(record)
        for bucket in self._by_domain.values():
            bucket.sort(key=lambda r: (r.scan_date, r.ip))

    def domains(self) -> tuple[str, ...]:
        return tuple(sorted(self._by_domain))

    def records_for(self, domain: str) -> list[AnnotatedScanRecord]:
        return list(self._by_domain.get(domain, ()))

    def records(self) -> list[AnnotatedScanRecord]:
        return list(self._records)

    def scan_dates_in(self, period: Period) -> tuple[date, ...]:
        return tuple(d for d in self.scan_dates if period.contains(d))

    def presence(self, domain: str, period: Period) -> float:
        """Fraction of the period's scans in which the domain appears."""
        dates_in_period = self.scan_dates_in(period)
        if not dates_in_period:
            return 0.0
        seen = {
            r.scan_date
            for r in self._by_domain.get(domain, ())
            if period.contains(r.scan_date)
        }
        return len(seen) / len(dates_in_period)

    def __len__(self) -> int:
        return len(self._records)
