"""The annotated scan dataset (CUIDS stand-in).

Indexes annotated records by the registered domains their certificates
secure, and knows the full scan calendar, so downstream stages can ask
both "what did we see for this domain?" and "in how many scans of this
period was the domain visible at all?" — the denominator of the
shortlist's visibility check.

A dataset can also carry *known telemetry gaps*: scans that were
scheduled but lost (collector outage, injected fault).  The calendar
keeps the lost dates — period boundaries and gap indices stay anchored
to the true schedule — while ``known_missing_dates`` lets visibility
checks exclude them from their denominators instead of mistaking an
observation gap for a domain going dark.
"""

from __future__ import annotations

from datetime import date
from typing import Callable, Iterable

from repro.net.timeline import Period
from repro.scan.annotate import AnnotatedScanRecord


class ScanDataset:
    """All annotated records of a study, indexed for deployment mapping."""

    def __init__(
        self,
        records: list[AnnotatedScanRecord],
        scan_dates: tuple[date, ...],
        known_missing_dates: Iterable[date] = (),
    ) -> None:
        self._records = list(records)
        self.scan_dates = tuple(sorted(scan_dates))
        self.known_missing_dates = frozenset(known_missing_dates)
        buckets: dict[str, list[AnnotatedScanRecord]] = {}
        for record in self._records:
            for base in record.base_domains:
                buckets.setdefault(base, []).append(record)
        # Buckets are frozen to tuples: records_for is called per-domain
        # per-period inside the stage fan-out, and handing out the stored
        # tuple is a zero-copy immutable view (was: a fresh list per call).
        self._by_domain: dict[str, tuple[AnnotatedScanRecord, ...]] = {
            base: tuple(sorted(bucket, key=lambda r: (r.scan_date, r.ip)))
            for base, bucket in buckets.items()
        }

    def domains(self) -> tuple[str, ...]:
        return tuple(sorted(self._by_domain))

    def records_for(self, domain: str) -> tuple[AnnotatedScanRecord, ...]:
        """The domain's records as an immutable view (do not mutate)."""
        return self._by_domain.get(domain, ())

    def records(self) -> list[AnnotatedScanRecord]:
        return list(self._records)

    def scan_dates_in(self, period: Period) -> tuple[date, ...]:
        return tuple(d for d in self.scan_dates if period.contains(d))

    def observed_dates_in(self, period: Period) -> tuple[date, ...]:
        """The period's scans that actually ran (known gaps excluded)."""
        return tuple(
            d
            for d in self.scan_dates
            if period.contains(d) and d not in self.known_missing_dates
        )

    def presence(self, domain: str, period: Period) -> float:
        """Fraction of the period's *observed* scans showing the domain.

        Known-missing scans are excluded from the denominator: a scan
        that never ran says nothing about the domain's visibility.
        With no known gaps this is exactly the naive ratio.
        """
        dates_in_period = self.observed_dates_in(period)
        if not dates_in_period:
            return 0.0
        seen = {
            r.scan_date
            for r in self._by_domain.get(domain, ())
            if period.contains(r.scan_date)
        }
        return len(seen) / len(dates_in_period)

    def degraded(
        self,
        drop_dates: Iterable[date] = (),
        drop_record: Callable[[AnnotatedScanRecord], bool] | None = None,
    ) -> ScanDataset:
        """Derive a dataset with known telemetry gaps.

        ``drop_dates`` removes whole weekly scans (recorded in
        ``known_missing_dates``); ``drop_record`` removes individual
        per-port observations.  The scan calendar is preserved so period
        boundaries and deployment-gap indices stay on the true schedule.
        """
        calendar = set(self.scan_dates)
        missing = frozenset(d for d in drop_dates if d in calendar)
        kept = [
            r
            for r in self._records
            if r.scan_date not in missing
            and (drop_record is None or not drop_record(r))
        ]
        return ScanDataset(
            kept,
            self.scan_dates,
            known_missing_dates=self.known_missing_dates | missing,
        )

    def __len__(self) -> int:
        return len(self._records)
