"""HTTP service content (Censys Search 2.0 context, Appendix A).

From late 2020 Censys began collecting service context including HTTP
responses, which is what let the paper's authors verify that the
counterfeit mail.mfa.gov.kg page "mimicked the Zimbra login page's look
and feel, but differed from the standard Zimbra code" — and later catch
the injected JavaScript social-engineering users into installing the
Tomiris downloader (Figure 6).

The model captures what that analysis needs: a page title (the look),
a body fingerprint (the actual code), the login forms present, and any
injected scripts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from datetime import date

from repro.net.timeline import DateInterval

#: Censys started collecting HTTP response context in late 2020.
HTTP_CONTEXT_START = date(2020, 11, 1)


@dataclass(frozen=True, slots=True)
class HttpResponse:
    """One endpoint's HTTP response as a scan would archive it."""

    title: str
    body_fingerprint: str
    forms: tuple[str, ...] = ()
    scripts: tuple[str, ...] = ()

    @classmethod
    def login_page(
        cls,
        product: str,
        operator: str,
        forms: tuple[str, ...] = ("username", "password"),
        scripts: tuple[str, ...] = (),
    ) -> "HttpResponse":
        """A product login page as deployed by ``operator``.

        The body fingerprint hashes product *and* operator: two Zimbra
        installs share a title but never a byte-identical page.
        """
        digest = hashlib.sha256(f"{product}|{operator}".encode()).hexdigest()[:16]
        return cls(
            title=f"{product} Sign In",
            body_fingerprint=digest,
            forms=forms,
            scripts=scripts,
        )

    def mimicked_by(self, attacker: str, scripts: tuple[str, ...] = ()) -> "HttpResponse":
        """The attacker's counterfeit: same look, different code.

        The counterfeit reproduces the title and forms but is a re-
        implementation — its body fingerprint differs — and may carry
        injected scripts (the update-mfa.exe lure of Figure 6).
        """
        digest = hashlib.sha256(
            f"counterfeit|{self.title}|{attacker}".encode()
        ).hexdigest()[:16]
        return HttpResponse(
            title=self.title,
            body_fingerprint=digest,
            forms=self.forms,
            scripts=self.scripts + scripts,
        )


@dataclass(frozen=True, slots=True)
class HttpObservation:
    """One (scan date, ip, response) row of HTTP context."""

    scan_date: date
    ip: str
    response: HttpResponse


class HttpContentStore:
    """HTTP content served per IP over time (port 443 implied)."""

    def __init__(self) -> None:
        self._content: dict[str, list[tuple[DateInterval, HttpResponse]]] = {}

    def serve(self, ip: str, response: HttpResponse, interval: DateInterval) -> None:
        self._content.setdefault(ip, []).append((interval, response))

    def content_at(self, ip: str, day: date) -> HttpResponse | None:
        for interval, response in reversed(self._content.get(ip, [])):
            if interval.contains(day):
                return response
        return None

    def scan(self, day: date) -> list[HttpObservation]:
        """Collect HTTP context for one scan date.

        Returns nothing before :data:`HTTP_CONTEXT_START`, mirroring the
        real data set's coverage.
        """
        if day < HTTP_CONTEXT_START:
            return []
        observations: list[HttpObservation] = []
        for ip in sorted(self._content):
            response = self.content_at(ip, day)
            if response is not None:
                observations.append(HttpObservation(day, ip, response))
        return observations

    def scan_range(self, scan_dates: tuple[date, ...]) -> list[HttpObservation]:
        observations: list[HttpObservation] = []
        for day in scan_dates:
            observations.extend(self.scan(day))
        return observations

    def __len__(self) -> int:
        return len(self._content)
