"""Internet-wide TLS scan substrate (Censys CUIDS stand-in).

A host population binds certificates to (IP, port) endpoints over time;
the scan engine visits every endpoint on each weekly scan date with
realistic liveness noise; the annotator joins each raw observation with
the IP-intelligence tables and certificate metadata to produce records
with the Table 1 schema; and the dataset indexes annotated records by
the registered domains their SANs secure — the input to deployment maps.
"""

from repro.scan.annotate import AnnotatedScanRecord, Annotator
from repro.scan.dataset import ScanDataset
from repro.scan.engine import RawScanObservation, ScanEngine
from repro.scan.host import HostPopulation, TLS_PORTS

__all__ = [
    "AnnotatedScanRecord",
    "Annotator",
    "ScanDataset",
    "RawScanObservation",
    "ScanEngine",
    "HostPopulation",
    "TLS_PORTS",
]
