"""Internet-wide TLS scan substrate (Censys CUIDS stand-in).

A host population binds certificates to (IP, port) endpoints over time;
the scan engine visits every endpoint on each weekly scan date with
realistic liveness noise; the annotator joins each raw observation with
the IP-intelligence tables and certificate metadata to produce records
with the Table 1 schema; and the dataset indexes annotated records by
the registered domains their SANs secure — the input to deployment maps.
Storage is columnar: datasets are backed by the struct-of-arrays
:class:`ScanTable` (interned value pools, CSR per-domain index), with
record objects materialized lazily where the row API hands them out.
"""

from repro.scan.annotate import AnnotatedScanRecord, Annotator
from repro.scan.dataset import ScanDataset
from repro.scan.engine import RawScanObservation, ScanEngine
from repro.scan.host import HostPopulation, TLS_PORTS
from repro.scan.table import ScanTable

__all__ = [
    "AnnotatedScanRecord",
    "Annotator",
    "ScanDataset",
    "ScanTable",
    "RawScanObservation",
    "ScanEngine",
    "HostPopulation",
    "TLS_PORTS",
]
