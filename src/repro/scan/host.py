"""The scannable host population.

Binds certificates to (IP, port) endpoints over date intervals.  The
paper scans the ports typically fronting TLS services attackers target:
443 (HTTPS), 465/587 (SMTP), 993 (IMAPS), 995 (POP3S) — footnote 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.net.timeline import DateInterval
from repro.tls.certificate import Certificate

#: Ports the study scans (paper footnote 4).
TLS_PORTS: tuple[int, ...] = (443, 465, 587, 993, 995)


@dataclass(frozen=True, slots=True)
class ServiceBinding:
    """One certificate served at one endpoint over an interval."""

    ip: str
    port: int
    certificate: Certificate
    interval: DateInterval

    def active_on(self, day: date) -> bool:
        return self.interval.contains(day)


class HostPopulation:
    """All certificate-serving endpoints in the simulated IPv4 space."""

    def __init__(self) -> None:
        self._bindings: dict[tuple[str, int], list[ServiceBinding]] = {}
        self._host_reliability: dict[str, float] = {}

    def add_service(
        self,
        ip: str,
        ports: tuple[int, ...],
        certificate: Certificate,
        interval: DateInterval,
        reliability: float = 1.0,
    ) -> None:
        """Serve ``certificate`` on ``ports`` of ``ip`` over ``interval``.

        ``reliability`` is the per-scan probability the host answers at
        all; flaky hosts create the visibility gaps the shortlist's
        20 %-missing-scans check prunes on.
        """
        if not ports:
            raise ValueError("service must listen on at least one port")
        if not 0.0 < reliability <= 1.0:
            raise ValueError("reliability must be in (0, 1]")
        for port in ports:
            if port not in TLS_PORTS:
                raise ValueError(f"port {port} is not scanned by the study")
            self._bindings.setdefault((ip, port), []).append(
                ServiceBinding(ip, port, certificate, interval)
            )
        existing = self._host_reliability.get(ip, 1.0)
        self._host_reliability[ip] = min(existing, reliability)

    def reliability_of(self, ip: str) -> float:
        return self._host_reliability.get(ip, 1.0)

    def serving(self, ip: str, port: int, day: date) -> Certificate | None:
        """Most recently bound certificate active at the endpoint on ``day``."""
        bindings = self._bindings.get((ip, port))
        if not bindings:
            return None
        for binding in reversed(bindings):
            if binding.active_on(day):
                return binding.certificate
        return None

    def serving_all(self, ip: str, port: int, day: date) -> list[Certificate]:
        """All certificates active at the endpoint on ``day``.

        An endpoint can expose several certificates to a scan (SNI-aware
        handshakes, certificate rollover overlap, or an attacker host
        mimicking several victims at once); each distinct certificate is
        returned once, newest binding first.
        """
        bindings = self._bindings.get((ip, port))
        if not bindings:
            return []
        seen: set[str] = set()
        certs: list[Certificate] = []
        for binding in reversed(bindings):
            if binding.active_on(day) and binding.certificate.fingerprint not in seen:
                seen.add(binding.certificate.fingerprint)
                certs.append(binding.certificate)
        return certs

    def endpoints(self) -> tuple[tuple[str, int], ...]:
        return tuple(self._bindings)

    def ips(self) -> tuple[str, ...]:
        return tuple({ip for ip, _ in self._bindings})

    def __len__(self) -> int:
        return len(self._bindings)
