"""Scan-record annotation (the Table 1 schema).

Joins each raw observation with origin ASN (pfx2as), country
(geolocation), and certificate metadata: crt.sh id, issuing CA,
browser-trust, whether any secured name is sensitive, and the set of
names secured.  Observations for the same (date, ip, certificate) are
aggregated across ports into a single record, which is how the paper's
Table 1 presents the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.ipintel.geo import GeoDB
from repro.ipintel.pfx2as import RoutingTable
from repro.net.names import is_sensitive_name
from repro.scan.engine import RawScanObservation
from repro.tls.certificate import Certificate
from repro.tls.matching import base_domains_secured, names_secured
from repro.tls.truststore import TrustStore


@dataclass(frozen=True, slots=True)
class AnnotatedScanRecord:
    """One annotated scan row (cf. Table 1 of the paper)."""

    scan_date: date
    ip: str
    ports: tuple[int, ...]
    asn: int
    country: str
    certificate: Certificate
    trusted: bool
    sensitive: bool
    names: tuple[str, ...]
    base_domains: tuple[str, ...]

    @property
    def crtsh_id(self) -> int:
        return self.certificate.crtsh_id

    @property
    def issuer(self) -> str:
        return self.certificate.issuer


class Annotator:
    """Joins raw scan observations with the IP-intelligence tables."""

    def __init__(
        self,
        routing: RoutingTable,
        geo: GeoDB,
        trust: TrustStore,
        unknown_asn: int = 0,
        unknown_country: str = "ZZ",
    ) -> None:
        self._routing = routing
        self._geo = geo
        self._trust = trust
        self._unknown_asn = unknown_asn
        self._unknown_country = unknown_country
        # Per-certificate metadata is invariant; memoize it.
        self._cert_cache: dict[str, tuple[bool, bool, tuple[str, ...], tuple[str, ...]]] = {}
        self._ip_cache: dict[str, tuple[int, str]] = {}

    def _ip_info(self, ip: str) -> tuple[int, str]:
        cached = self._ip_cache.get(ip)
        if cached is None:
            asn = self._routing.lookup(ip) or self._unknown_asn
            country = self._geo.lookup(ip) or self._unknown_country
            cached = (asn, country)
            self._ip_cache[ip] = cached
        return cached

    def _cert_info(
        self, cert: Certificate
    ) -> tuple[bool, bool, tuple[str, ...], tuple[str, ...]]:
        cached = self._cert_cache.get(cert.fingerprint)
        if cached is None:
            names = tuple(sorted(names_secured(cert)))
            cached = (
                self._trust.is_browser_trusted(cert),
                any(is_sensitive_name(n) for n in names),
                names,
                tuple(sorted(base_domains_secured(cert))),
            )
            self._cert_cache[cert.fingerprint] = cached
        return cached

    @staticmethod
    def _aggregated(
        observations: list[RawScanObservation],
    ) -> list[list[RawScanObservation]]:
        """Per-(date, ip, cert) observation buckets, first-seen order."""
        grouped: dict[tuple[date, str, str], list[RawScanObservation]] = {}
        for obs in observations:
            key = (obs.scan_date, obs.ip, obs.certificate.fingerprint)
            bucket = grouped.get(key)
            if bucket is None:
                grouped[key] = [obs]
            else:
                bucket.append(obs)
        return list(grouped.values())

    def annotate(self, observations: list[RawScanObservation]) -> list[AnnotatedScanRecord]:
        """Aggregate per (date, ip, cert) and annotate."""
        records: list[AnnotatedScanRecord] = []
        for bucket in self._aggregated(observations):
            first = bucket[0]
            asn, country = self._ip_info(first.ip)
            trusted, sensitive, names, bases = self._cert_info(first.certificate)
            records.append(
                AnnotatedScanRecord(
                    scan_date=first.scan_date,
                    ip=first.ip,
                    ports=tuple(sorted({o.port for o in bucket})),
                    asn=asn,
                    country=country,
                    certificate=first.certificate,
                    trusted=trusted,
                    sensitive=sensitive,
                    names=names,
                    base_domains=bases,
                )
            )
        return records

    def annotate_dataset(
        self,
        observations: list[RawScanObservation],
        scan_dates: tuple[date, ...],
        known_missing_dates: tuple[date, ...] = (),
    ):
        """Annotate straight into a columnar :class:`ScanDataset`.

        The annotation-time fast path: rows append into the table's
        typed columns (values interned as they first appear) and no
        :class:`AnnotatedScanRecord` objects are built — they stay lazy
        until something asks for the row view.  Produces a dataset
        equivalent to ``ScanDataset(self.annotate(obs), scan_dates)``.
        """
        from repro.scan.dataset import ScanDataset
        from repro.scan.table import ScanTable

        builder = ScanTable.build()
        for bucket in self._aggregated(observations):
            first = bucket[0]
            asn, country = self._ip_info(first.ip)
            trusted, sensitive, names, bases = self._cert_info(first.certificate)
            builder.append_row(
                first.scan_date.toordinal(),
                first.ip,
                asn,
                first.certificate,
                country,
                tuple(sorted({o.port for o in bucket})),
                names,
                bases,
                trusted,
                sensitive,
            )
        return ScanDataset.from_table(
            builder.finish(), tuple(scan_dates), known_missing_dates
        )
