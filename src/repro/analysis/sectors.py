"""Table 4 — affected organizations by sector."""

from __future__ import annotations

from dataclasses import dataclass

from repro.world.entities import Sector
from repro.world.groundtruth import AttackKind, GroundTruthLedger

#: The paper's Table 4, for comparison in benches and EXPERIMENTS.md.
PAPER_TABLE4: dict[str, tuple[int, int]] = {
    "Government Ministry": (12, 11),
    "Government Organization": (4, 6),
    "Government Internet Services": (7, 0),
    "Infrastructure Provider": (6, 0),
    "Law Enforcement": (3, 1),
    "Energy Company": (3, 0),
    "Intelligence Services": (3, 0),
    "Postal Service": (0, 3),
    "Civil Aviation": (2, 0),
    "Local Government": (0, 2),
    "Insurance": (1, 0),
    "IT Firm": (0, 1),
}


@dataclass(frozen=True, slots=True)
class SectorRow:
    sector: str
    hijacked: int
    targeted: int

    @property
    def total(self) -> int:
        return self.hijacked + self.targeted


def sector_table(
    ledger: GroundTruthLedger, identified_domains: set[str] | None = None
) -> list[SectorRow]:
    """Sector breakdown of identified victims (Table 4).

    With ``identified_domains`` the table covers only domains the
    pipeline actually found; without it, the full ground truth.
    """
    counts: dict[Sector, list[int]] = {}
    for record in ledger.records:
        if identified_domains is not None and record.domain not in identified_domains:
            continue
        row = counts.setdefault(record.sector, [0, 0])
        if record.kind is AttackKind.HIJACKED:
            row[0] += 1
        else:
            row[1] += 1
    rows = [
        SectorRow(sector.value, hijacked, targeted)
        for sector, (hijacked, targeted) in counts.items()
    ]
    rows.sort(key=lambda r: (-r.total, r.sector))
    return rows


def format_sector_table(rows: list[SectorRow]) -> str:
    header = f"{'Sector':<30} {'Hij.':>5} {'Tar.':>5} {'Total':>6}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(f"{row.sector:<30} {row.hijacked:>5} {row.targeted:>5} {row.total:>6}")
    total_h = sum(r.hijacked for r in rows)
    total_t = sum(r.targeted for r in rows)
    lines.append("-" * len(header))
    lines.append(f"{'Total':<30} {total_h:>5} {total_t:>5} {total_h + total_t:>6}")
    return "\n".join(lines)
