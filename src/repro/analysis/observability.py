"""Section 5.3 — observability statistics.

Measures, on this run's data, the quantities the paper reports:

* the fraction of hijacked domains whose pDNS attack evidence
  (resolutions to malicious infrastructure) spans at most one day;
* how quickly malicious certificates became visible to the weekly scans
  after issuance (the ≤8-days median claim);
* how many weekly scans each malicious certificate appeared in (the
  "one scan for >50%, two for another ~20%" claim);
* zone-file blindness: for how many hijacks a daily delegation snapshot
  ever shows the rogue nameservers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import timedelta

from repro.core.pipeline import PipelineReport
from repro.net.timeline import iter_days
from repro.pdns.database import PassiveDNSDatabase
from repro.scan.dataset import ScanDataset
from repro.world.groundtruth import AttackKind, GroundTruthLedger
from repro.world.world import World


@dataclass
class ObservabilityStats:
    pdns_spans_days: dict[str, int] = field(default_factory=dict)
    cert_first_scan_lag_days: dict[str, int] = field(default_factory=dict)
    cert_scan_appearances: dict[str, int] = field(default_factory=dict)
    zone_visible_days: dict[str, int] = field(default_factory=dict)

    @property
    def frac_pdns_at_most_one_day(self) -> float:
        if not self.pdns_spans_days:
            return 0.0
        hits = sum(1 for span in self.pdns_spans_days.values() if span <= 1)
        return hits / len(self.pdns_spans_days)

    @property
    def frac_cert_visible_within_8_days(self) -> float:
        if not self.cert_first_scan_lag_days:
            return 0.0
        hits = sum(1 for lag in self.cert_first_scan_lag_days.values() if lag <= 8)
        return hits / len(self.cert_first_scan_lag_days)

    def frac_cert_seen_in_exactly(self, n_scans: int) -> float:
        if not self.cert_scan_appearances:
            return 0.0
        hits = sum(1 for n in self.cert_scan_appearances.values() if n == n_scans)
        return hits / len(self.cert_scan_appearances)

    @property
    def frac_zone_blind(self) -> float:
        """Fraction of hijacks never visible in daily zone snapshots."""
        if not self.zone_visible_days:
            return 0.0
        hits = sum(1 for days in self.zone_visible_days.values() if days == 0)
        return hits / len(self.zone_visible_days)


def observability_stats(
    ledger: GroundTruthLedger,
    pdns: PassiveDNSDatabase,
    scan: ScanDataset,
    world: World | None = None,
    report: PipelineReport | None = None,
) -> ObservabilityStats:
    """Compute the Section 5.3 statistics for all hijacked domains."""
    stats = ObservabilityStats()
    for record in ledger.records:
        if record.kind is not AttackKind.HIJACKED:
            continue
        attacker_ips = set(record.attacker_ips)
        if report is not None:
            finding = report.finding_for(record.domain)
            if finding is not None:
                attacker_ips.update(finding.attacker_ips)

        # pDNS attack-evidence span.
        malicious_rows = [
            row
            for row in pdns.query_domain(record.domain)
            if (row.rtype.value == "A" and row.rdata in attacker_ips)
            or (row.rtype.value == "NS" and row.rdata in record.attacker_ns)
        ]
        if malicious_rows:
            first = min(r.first_seen for r in malicious_rows)
            last = max(r.last_seen for r in malicious_rows)
            stats.pdns_spans_days[record.domain] = (last - first).days + 1

        # Malicious-certificate scan visibility.
        if record.crtsh_id:
            matching = [
                r
                for r in scan.records_for(record.domain)
                if r.certificate.crtsh_id == record.crtsh_id
            ]
            seen_dates = sorted({r.scan_date for r in matching})
            if seen_dates:
                issued_on = matching[0].certificate.not_before
                stats.cert_first_scan_lag_days[record.domain] = (
                    seen_dates[0] - issued_on
                ).days
                stats.cert_scan_appearances[record.domain] = len(seen_dates)

        # Zone-file visibility of the rogue delegation.
        if world is not None and record.attacker_ns:
            visible = _zone_visible_days(world, record)
            stats.zone_visible_days[record.domain] = visible
    return stats


def _zone_visible_days(world: World, record) -> int:
    """Days on which a daily snapshot shows the rogue NS for the victim."""
    from repro.net.names import public_suffix

    registry = world.registry_for(record.domain)
    suffix = public_suffix(record.domain)
    rogue = set(record.attacker_ns)
    visible = 0
    start = record.hijack_date - timedelta(days=5)
    end = record.hijack_date + timedelta(days=max(record.redirect_days, 1) + 5)
    for day in iter_days(start, min(end, world.end)):
        snapshot = registry.zone_snapshot(suffix, day)
        if set(snapshot.ns_of(record.domain)) & rogue:
            visible += 1
    return visible
