"""Evaluation analyses: one module per table/figure of the paper.

* ``evaluation`` — score pipeline verdicts against ground truth.
* ``sectors`` — Table 4 (affected organizations by sector).
* ``attacker_infra`` — Table 5 (networks used by attackers).
* ``certificates`` — Table 9 (malicious certificates, CAs, revocation).
* ``observability`` — Section 5.3 statistics.
* ``funnel`` — Section 4.2-4.4 population fractions and funnel.
* ``gallery`` — the Figures 3-5 deployment-map pattern gallery.
* ``rendering`` — aligned-text table output shared by benches/examples.
"""

from repro.analysis.attacker_infra import attacker_network_table
from repro.analysis.attribution import attribution_accuracy, cluster_campaigns
from repro.analysis.certificates import certificate_table
from repro.analysis.content import analyze_attacker_content, compare_pages
from repro.analysis.evaluation import EvaluationResult, evaluate_report
from repro.analysis.funnel import classification_fractions
from repro.analysis.gallery import render_gallery
from repro.analysis.longitudinal import attacks_by_year, tld_campaigns
from repro.analysis.notification import build_all_notifications, build_notification
from repro.analysis.observability import ObservabilityStats, observability_stats
from repro.analysis.sectors import sector_table
from repro.analysis.robustness import run_trials
from repro.analysis.sweeps import (
    sweep_corroboration_window,
    sweep_transient_threshold,
    sweep_visibility_floor,
)
from repro.analysis.timeline import format_timeline, reconstruct_timeline

__all__ = [
    "attacker_network_table",
    "attribution_accuracy",
    "cluster_campaigns",
    "certificate_table",
    "analyze_attacker_content",
    "compare_pages",
    "EvaluationResult",
    "evaluate_report",
    "classification_fractions",
    "render_gallery",
    "attacks_by_year",
    "tld_campaigns",
    "build_all_notifications",
    "build_notification",
    "ObservabilityStats",
    "observability_stats",
    "sector_table",
    "run_trials",
    "sweep_corroboration_window",
    "sweep_transient_threshold",
    "sweep_visibility_floor",
    "format_timeline",
    "reconstruct_timeline",
]
