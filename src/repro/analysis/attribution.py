"""Actor attribution by shared infrastructure (Section 5.6).

The paper repeatedly leans on infrastructure reuse — the same IP
hijacking six domains, the same rogue nameservers serving four — and
observes that the 2018 hijack wave and the 2020 targeted wave "likely
simply reflect different attackers being observed".  This module makes
that inference explicit: build a bipartite graph of victims and the
attacker infrastructure that touched them (IPs and nameserver names),
take connected components, and each component is one *campaign cluster*
— infrastructure the same actor controlled.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

import networkx as nx

from repro.core.report import DomainFinding


@dataclass(frozen=True, slots=True)
class CampaignCluster:
    """One connected component of shared attacker infrastructure."""

    domains: tuple[str, ...]
    ips: tuple[str, ...]
    nameservers: tuple[str, ...]
    asns: tuple[int, ...]
    first: date | None
    last: date | None

    @property
    def size(self) -> int:
        return len(self.domains)

    @property
    def span_days(self) -> int:
        if self.first is None or self.last is None:
            return 0
        return (self.last - self.first).days


def _infra_nodes(finding: DomainFinding) -> list[str]:
    nodes = [f"ip:{ip}" for ip in finding.attacker_ips]
    nodes += [f"ns:{ns}" for ns in finding.attacker_ns]
    return nodes


def cluster_campaigns(findings: list[DomainFinding]) -> list[CampaignCluster]:
    """Connected components over the victim-infrastructure graph."""
    graph = nx.Graph()
    for finding in findings:
        victim_node = f"victim:{finding.domain}"
        graph.add_node(victim_node)
        for node in _infra_nodes(finding):
            graph.add_edge(victim_node, node)

    by_domain = {f.domain: f for f in findings}
    clusters: list[CampaignCluster] = []
    for component in nx.connected_components(graph):
        domains = sorted(
            node.split(":", 1)[1] for node in component if node.startswith("victim:")
        )
        ips = sorted(
            node.split(":", 1)[1] for node in component if node.startswith("ip:")
        )
        nameservers = sorted(
            node.split(":", 1)[1] for node in component if node.startswith("ns:")
        )
        asns = sorted(
            {
                by_domain[d].attacker_asn
                for d in domains
                if by_domain[d].attacker_asn is not None
            }
        )
        dates = [
            by_domain[d].first_evidence
            for d in domains
            if by_domain[d].first_evidence is not None
        ]
        clusters.append(
            CampaignCluster(
                domains=tuple(domains),
                ips=tuple(ips),
                nameservers=tuple(nameservers),
                asns=tuple(asns),
                first=min(dates) if dates else None,
                last=max(dates) if dates else None,
            )
        )
    clusters.sort(key=lambda c: (-c.size, c.domains))
    return clusters


def attribution_accuracy(
    clusters: list[CampaignCluster], actor_of: dict[str, str]
) -> tuple[float, float]:
    """Score clusters against ground-truth actors.

    Returns (purity, fragmentation): purity is the fraction of domains
    living in a cluster dominated by their own actor; fragmentation is
    the mean number of clusters each actor's victims are spread over
    (1.0 = every actor fully reassembled).
    """
    scored = 0
    pure = 0
    actor_clusters: dict[str, set[int]] = {}
    for index, cluster in enumerate(clusters):
        actors = [actor_of[d] for d in cluster.domains if d in actor_of]
        if not actors:
            continue
        dominant = max(set(actors), key=actors.count)
        for domain in cluster.domains:
            actor = actor_of.get(domain)
            if actor is None:
                continue
            scored += 1
            if actor == dominant:
                pure += 1
            actor_clusters.setdefault(actor, set()).add(index)
    purity = pure / scored if scored else 1.0
    fragmentation = (
        sum(len(indexes) for indexes in actor_clusters.values()) / len(actor_clusters)
        if actor_clusters
        else 1.0
    )
    return purity, fragmentation


def format_clusters(clusters: list[CampaignCluster], top: int = 10) -> str:
    header = f"{'#':>3} {'victims':>8} {'ASNs':<22} {'first':<11} {'last':<11} span"
    lines = [header, "-" * len(header)]
    for index, cluster in enumerate(clusters[:top], start=1):
        lines.append(
            f"{index:>3} {cluster.size:>8} {str(list(cluster.asns))[:22]:<22} "
            f"{str(cluster.first):<11} {str(cluster.last):<11} "
            f"{cluster.span_days}d"
        )
        preview = ", ".join(cluster.domains[:4])
        more = f" (+{cluster.size - 4} more)" if cluster.size > 4 else ""
        lines.append(f"    {preview}{more}")
    return "\n".join(lines)
