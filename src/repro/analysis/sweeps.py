"""Parameter-sensitivity sweeps over the pipeline's design knobs.

The paper fixes several thresholds by judgment (three-month transients,
the 80% visibility floor, the corroboration window).  A sweep runs the
full pipeline once per candidate value and tabulates recall against
ground truth plus the noise indicators (shortlist size, inconclusive
count), making the trade-off each threshold balances visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.analysis.evaluation import evaluate_report
from repro.core.inspection import InspectionConfig
from repro.core.patterns import PatternConfig
from repro.core.pipeline import PipelineConfig
from repro.core.shortlist import ShortlistConfig
from repro.core.types import Verdict
from repro.world.sim import StudyDatasets


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One configuration's outcome."""

    label: str
    value: float
    hijacked_found: int
    targeted_found: int
    recall: float
    false_positives: int
    shortlisted: int
    inconclusive: int


@dataclass
class SweepResult:
    parameter: str
    points: list[SweepPoint] = field(default_factory=list)

    def best(self) -> SweepPoint:
        return max(self.points, key=lambda p: (p.recall, -p.shortlisted))


def _run_point(
    study: StudyDatasets, config: PipelineConfig, label: str, value: float
) -> SweepPoint:
    report = study.pipeline(config).run()
    evaluation = evaluate_report(report, study.ground_truth)
    inconclusive = sum(
        1 for r in report.inspections if r.verdict is Verdict.INCONCLUSIVE
    )
    return SweepPoint(
        label=label,
        value=value,
        hijacked_found=len(report.hijacked()),
        targeted_found=len(report.targeted()),
        recall=evaluation.recall,
        false_positives=len(evaluation.false_positives),
        shortlisted=len(report.shortlist),
        inconclusive=inconclusive,
    )


def sweep(
    study: StudyDatasets,
    parameter: str,
    values: list[float],
    make_config: Callable[[float], PipelineConfig],
) -> SweepResult:
    """Generic sweep: one pipeline run per candidate value."""
    result = SweepResult(parameter=parameter)
    for value in values:
        result.points.append(
            _run_point(study, make_config(value), f"{parameter}={value}", value)
        )
    return result


def sweep_transient_threshold(
    study: StudyDatasets, values: list[int] | None = None
) -> SweepResult:
    """Sweep the three-month transient threshold (Section 4.2.3)."""
    values = values or [30, 60, 91, 120, 183]
    return sweep(
        study,
        "transient_max_days",
        [float(v) for v in values],
        lambda v: PipelineConfig(patterns=PatternConfig(transient_max_days=int(v))),
    )


def sweep_visibility_floor(
    study: StudyDatasets, values: list[float] | None = None
) -> SweepResult:
    """Sweep the 80% scan-presence floor (Section 4.3)."""
    values = values or [0.5, 0.65, 0.8, 0.9, 0.95]
    return sweep(
        study,
        "min_presence",
        values,
        lambda v: PipelineConfig(shortlist=ShortlistConfig(min_presence=v)),
    )


def sweep_corroboration_window(
    study: StudyDatasets, values: list[int] | None = None
) -> SweepResult:
    """Sweep the pDNS/CT corroboration radius (Section 4.4)."""
    values = values or [3, 7, 14, 30, 60]
    return sweep(
        study,
        "window_days",
        [float(v) for v in values],
        lambda v: PipelineConfig(
            inspection=InspectionConfig(
                window_days=int(v), issue_proximity_days=max(int(v) - 9, 2)
            )
        ),
    )


def format_sweep(result: SweepResult) -> str:
    header = (
        f"{result.parameter:<20} {'hij.':>5} {'tar.':>5} {'recall':>7} "
        f"{'FP':>4} {'shortlist':>10} {'inconcl.':>9}"
    )
    lines = [header, "-" * len(header)]
    for point in result.points:
        lines.append(
            f"{point.value:<20g} {point.hijacked_found:>5} {point.targeted_found:>5} "
            f"{point.recall:>7.2f} {point.false_positives:>4} "
            f"{point.shortlisted:>10} {point.inconclusive:>9}"
        )
    return "\n".join(lines)
