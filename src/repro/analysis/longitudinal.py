"""Section 5.2 — longitudinal patterns of the hijacks.

The paper's observations: attacks span the whole four-year window with a
pronounced 2018 uptick (the Sea Turtle campaigns); attackers return to
the same TLD over months or years; and hijacks continue well after the
early-2019 public disclosures (the .kg cluster in Dec 2020 / Jan 2021).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.net.names import public_suffix
from repro.world.groundtruth import AttackKind, GroundTruthLedger

#: Sea Turtle reporting went public in early 2019 (Talos, Crowdstrike).
DISCLOSURE_DATE = date(2019, 4, 1)


@dataclass(frozen=True, slots=True)
class YearlyRow:
    year: int
    hijacked: int
    targeted: int

    @property
    def total(self) -> int:
        return self.hijacked + self.targeted


def attacks_by_year(
    ledger: GroundTruthLedger, identified_domains: set[str] | None = None
) -> list[YearlyRow]:
    """Victims per calendar year of first attack evidence."""
    counts: dict[int, list[int]] = {}
    for record in ledger.records:
        if identified_domains is not None and record.domain not in identified_domains:
            continue
        row = counts.setdefault(record.hijack_date.year, [0, 0])
        if record.kind is AttackKind.HIJACKED:
            row[0] += 1
        else:
            row[1] += 1
    return [
        YearlyRow(year, hijacked, targeted)
        for year, (hijacked, targeted) in sorted(counts.items())
    ]


@dataclass(frozen=True, slots=True)
class TldCampaign:
    """Repeated attacks under one public suffix."""

    suffix: str
    domains: tuple[str, ...]
    first: date
    last: date

    @property
    def span_days(self) -> int:
        return (self.last - self.first).days

    @property
    def recurring(self) -> bool:
        return len(self.domains) > 1


def tld_campaigns(ledger: GroundTruthLedger) -> list[TldCampaign]:
    """Group victims by public suffix and order by campaign span."""
    by_suffix: dict[str, list] = {}
    for record in ledger.records:
        by_suffix.setdefault(public_suffix(record.domain), []).append(record)
    campaigns = []
    for suffix, records in by_suffix.items():
        records.sort(key=lambda r: r.hijack_date)
        campaigns.append(
            TldCampaign(
                suffix=suffix,
                domains=tuple(r.domain for r in records),
                first=records[0].hijack_date,
                last=records[-1].hijack_date,
            )
        )
    campaigns.sort(key=lambda c: (-c.span_days, c.suffix))
    return campaigns


def post_disclosure_attacks(
    ledger: GroundTruthLedger, disclosure: date = DISCLOSURE_DATE
) -> list[str]:
    """Victims first attacked after the public Sea Turtle disclosures —
    evidence the threat remained ongoing."""
    return sorted(
        record.domain
        for record in ledger.records
        if record.hijack_date >= disclosure
    )


def format_yearly(rows: list[YearlyRow]) -> str:
    header = f"{'Year':<6} {'Hij.':>5} {'Tar.':>5} {'Total':>6}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(f"{row.year:<6} {row.hijacked:>5} {row.targeted:>5} {row.total:>6}")
    return "\n".join(lines)
