"""Pattern gallery: the canonical deployment-map shapes of Figures 3-5.

Builds one synthetic domain per representative pattern — the stable
shapes S1-S4, the transitions X1-X3, the suspicious transients T1/T2,
and a noisy mover — renders each as an ASCII deployment map, and shows
how the classifier labels it.  Lives in the package (not the examples
tree) so ``repro-hunt gallery`` works from an installed wheel;
``examples/pattern_gallery.py`` delegates here.
"""

from __future__ import annotations

from datetime import date, timedelta
from typing import Iterator

from repro.core.deployment import build_deployment_map
from repro.core.patterns import classify
from repro.core.render import render_classification
from repro.net.timeline import Period
from repro.scan.annotate import AnnotatedScanRecord
from repro.tls.certificate import Certificate

PERIOD = Period(index=0, start=date(2019, 1, 1), end=date(2019, 6, 30))
DATES = tuple(PERIOD.start + timedelta(days=7 * i) for i in range(26))


def cert(name: str, serial: int, issued: date, issuer: str = "DigiCert Inc") -> Certificate:
    return Certificate(
        serial=serial, common_name=name, sans=(name,), issuer=issuer,
        not_before=issued, not_after=issued + timedelta(days=365),
    )


def records(domain, dates, ip, asn, cc, certificate):
    return [
        AnnotatedScanRecord(
            scan_date=d, ip=ip, ports=(443,), asn=asn, country=cc,
            certificate=certificate, trusted=True,
            sensitive="mail" in certificate.common_name,
            names=(certificate.common_name,), base_domains=(domain,),
        )
        for d in dates
    ]


def gallery() -> Iterator[tuple[str, str, list[AnnotatedScanRecord]]]:
    c = {i: cert(f"www.d{i}.com", i, date(2018, 12, 1)) for i in range(1, 20)}
    rollover_new = cert("www.d2.com", 21, date(2019, 3, 25))
    extra_cert = cert("app.d4.com", 22, date(2019, 3, 1))
    new_provider_cert = cert("www.d6.com", 23, date(2019, 3, 25), "Let's Encrypt")
    migration_cert = cert("www.d7.com", 24, date(2019, 3, 25), "Let's Encrypt")
    rogue = cert("mail.d8.com", 25, date(2019, 3, 20), "Let's Encrypt")

    yield "S1 — one deployment, one certificate (most of the Internet)", "d1.com", (
        records("d1.com", DATES, "10.0.0.1", 100, "US", c[1])
    )
    yield "S2 — certificate rollover within a stable deployment", "d2.com", (
        records("d2.com", DATES[:13], "10.0.0.2", 100, "US", c[2])
        + records("d2.com", DATES[13:], "10.0.0.2", 100, "US", rollover_new)
    )
    yield "S3 — new geography, same AS (provider expansion)", "d3.com", (
        records("d3.com", DATES, "10.0.0.3", 100, "US", c[3])
        + records("d3.com", DATES[10:], "10.1.0.3", 100, "DE", c[3])
    )
    yield "S4 — an additional certificate on the same infrastructure", "d4.com", (
        records("d4.com", DATES, "10.0.0.4", 100, "US", c[4])
        + records("d4.com", DATES[9:], "10.0.0.4", 100, "US", extra_cert)
    )
    yield "X1 — expansion into a new AS with the same certificate", "d5.com", (
        records("d5.com", DATES, "10.0.0.5", 100, "US", c[5])
        + records("d5.com", DATES[12:], "20.0.0.5", 200, "DE", c[5])
    )
    yield "X2 — expansion into a new AS with an additional certificate", "d6.com", (
        records("d6.com", DATES, "10.0.0.6", 100, "US", c[6])
        + records("d6.com", DATES[12:], "20.0.0.6", 200, "DE", new_provider_cert)
    )
    yield "X3 — migration to entirely new infrastructure", "d7.com", (
        records("d7.com", DATES[:14], "10.0.0.7", 100, "US", c[7])
        + records("d7.com", DATES[13:], "20.0.0.7", 200, "DE", migration_cert)
    )
    yield "T1 — TRANSIENT deployment with a NEW certificate (suspicious!)", "d8.com", (
        records("d8.com", DATES, "10.0.0.8", 100, "US", c[8])
        + records("d8.com", DATES[12:13], "203.0.113.8", 666, "NL", rogue)
    )
    yield "T2 — TRANSIENT deployment serving the STABLE certificate (proxy prelude)", "d9.com", (
        records("d9.com", DATES, "10.0.0.9", 100, "US", c[9])
        + records("d9.com", DATES[12:14], "203.0.113.9", 666, "NL", c[9])
    )
    noisy_records = []
    for hop in range(4):
        hop_cert = cert("www.d10.com", 30 + hop, date(2019, 1, 1), "Let's Encrypt")
        noisy_records += records(
            "d10.com", DATES[hop * 6 : hop * 6 + 5], f"10.{hop}.0.10", 300 + hop, "US", hop_cert
        )
    yield "NOISY — continual movement, no stable deployment", "d10.com", noisy_records


def render_gallery() -> str:
    """The full gallery as one renderable text block."""
    blocks: list[str] = []
    for title, domain, recs in gallery():
        map_ = build_deployment_map(domain, recs, PERIOD, DATES)
        blocks.append(
            "\n".join(
                ["=" * 78, title, "=" * 78, render_classification(classify(map_)), ""]
            )
        )
    return "\n".join(blocks)


def main() -> None:
    print(render_gallery())


if __name__ == "__main__":
    main()
