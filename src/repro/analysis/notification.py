"""Victim notification reports (the Section 6 ethics workflow).

The paper's primary ethical obligation was notifying previously
unidentified victims, directly and via national CERTs, with "all domains
and inferred attacker infrastructure to allow for full auditing".  This
module renders exactly that artifact from a pipeline finding: a per-
victim plain-text report carrying every piece of evidence an operator
needs to audit their own logs — the hijack timeframe, the attacker IPs
and rogue nameservers, and the maliciously obtained certificate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import DomainFinding
from repro.core.types import Verdict
from repro.ipintel.asnames import as_name


@dataclass(frozen=True, slots=True)
class Notification:
    domain: str
    cert_contact: str  # e.g. "cert@<cc> national CERT"
    body: str


def _cert_contact(finding: DomainFinding) -> str:
    cc = finding.victim_ccs[0] if finding.victim_ccs else None
    if cc:
        return f"national CERT ({cc})"
    return "domain operator (no national CERT inferred)"


def build_notification(finding: DomainFinding) -> Notification:
    """Render one victim's notification report."""
    if finding.verdict not in (Verdict.HIJACKED, Verdict.TARGETED):
        raise ValueError(f"{finding.domain} is not an identified victim")

    action = (
        "was HIJACKED: traffic for the subdomain below was redirected to "
        "attacker-controlled infrastructure, and a browser-trusted TLS "
        "certificate for it was maliciously obtained"
        if finding.verdict is Verdict.HIJACKED
        else "was TARGETED: attacker infrastructure impersonating the domain "
        "was staged, although we found no evidence the attack completed"
    )
    lines = [
        f"Subject: possible DNS infrastructure compromise of {finding.domain}",
        "",
        f"Our retroactive analysis indicates {finding.domain} {action}.",
        "",
        f"  first evidence        : {finding.first_evidence or 'unknown'}",
        f"  targeted name         : "
        f"{(finding.subdomain + '.') if finding.subdomain else ''}{finding.domain}",
        f"  detection channel     : {finding.detection.value if finding.detection else '-'}",
    ]
    for ip in finding.attacker_ips:
        asn = finding.attacker_asn
        lines.append(
            f"  attacker IP           : {ip}"
            + (f" (AS{asn} {as_name(asn)}, {finding.attacker_cc})" if asn else "")
        )
    for ns in finding.attacker_ns:
        lines.append(f"  rogue nameserver      : {ns}")
    if finding.crtsh_id:
        lines.append(
            f"  malicious certificate : crt.sh id {finding.crtsh_id} "
            f"issued by {finding.issuer_ca}"
        )
        lines.append(
            "  recommended action    : audit DNS change logs around the date "
            "above, revoke the certificate, rotate all credentials for the "
            "targeted service, and enable registry lock."
        )
    else:
        lines.append(
            "  recommended action    : audit DNS change logs around the date "
            "above and rotate credentials for the targeted service."
        )
    body = "\n".join(lines)
    return Notification(
        domain=finding.domain, cert_contact=_cert_contact(finding), body=body
    )


def build_all_notifications(findings: list[DomainFinding]) -> list[Notification]:
    """Reports for every identified victim, ready for CERT outreach."""
    return [
        build_notification(finding)
        for finding in findings
        if finding.verdict in (Verdict.HIJACKED, Verdict.TARGETED)
    ]
