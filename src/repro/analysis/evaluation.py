"""Scoring pipeline verdicts against the world's ground truth.

The central evaluation question of the reproduction: does the pipeline
recover each attack, and does it recover it through the *same* channel
the paper reports (T1 / T1* / T2 / P-IP / P-NS / targeted)?  Also counts
false positives — benign domains the pipeline called hijacked or
targeted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import PipelineReport
from repro.core.types import DetectionType, Verdict
from repro.world.groundtruth import AttackKind, GroundTruthLedger


@dataclass
class DomainScore:
    domain: str
    expected_kind: AttackKind
    expected_detection: DetectionType | None
    found: bool
    verdict: Verdict | None
    detection: DetectionType | None

    @property
    def kind_correct(self) -> bool:
        if not self.found or self.verdict is None:
            return False
        expected = (
            Verdict.HIJACKED
            if self.expected_kind is AttackKind.HIJACKED
            else Verdict.TARGETED
        )
        return self.verdict is expected

    @property
    def detection_correct(self) -> bool:
        if not self.kind_correct:
            return False
        if self.expected_detection is None:
            return True
        if self.expected_detection is DetectionType.T2_TARGETED:
            return self.verdict is Verdict.TARGETED
        return self.detection is self.expected_detection


@dataclass
class EvaluationResult:
    scores: list[DomainScore] = field(default_factory=list)
    false_positives: list[str] = field(default_factory=list)

    @property
    def n_expected(self) -> int:
        return len(self.scores)

    @property
    def n_found(self) -> int:
        return sum(1 for s in self.scores if s.found)

    @property
    def n_kind_correct(self) -> int:
        return sum(1 for s in self.scores if s.kind_correct)

    @property
    def n_detection_correct(self) -> int:
        return sum(1 for s in self.scores if s.detection_correct)

    @property
    def recall(self) -> float:
        return self.n_kind_correct / self.n_expected if self.n_expected else 1.0

    @property
    def precision(self) -> float:
        n_flagged = self.n_found + len(self.false_positives)
        return self.n_found / n_flagged if n_flagged else 1.0

    def missed(self) -> list[DomainScore]:
        return [s for s in self.scores if not s.kind_correct]

    def mislabeled(self) -> list[DomainScore]:
        return [s for s in self.scores if s.kind_correct and not s.detection_correct]


def evaluate_report(
    report: PipelineReport, ground_truth: GroundTruthLedger
) -> EvaluationResult:
    """Score a pipeline report against the ledger."""
    result = EvaluationResult()
    truth_domains = ground_truth.domains()
    for record in ground_truth.records:
        finding = report.finding_for(record.domain)
        result.scores.append(
            DomainScore(
                domain=record.domain,
                expected_kind=record.kind,
                expected_detection=record.expected_detection,
                found=finding is not None,
                verdict=finding.verdict if finding else None,
                detection=finding.detection if finding else None,
            )
        )
    for finding in report.findings:
        if finding.domain not in truth_domains:
            result.false_positives.append(finding.domain)
    return result
