"""Table 5 — networks used by attackers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ipintel.asnames import as_name
from repro.world.groundtruth import AttackKind, GroundTruthLedger

#: The paper's Table 5 (ASN -> (hijacked, targeted) domain counts).
PAPER_TABLE5: dict[int, tuple[int, int]] = {
    14061: (15, 1),
    20473: (7, 4),
    45102: (0, 9),
    50673: (7, 1),
    48282: (4, 0),
    47220: (0, 4),
    9009: (2, 0),
    24961: (2, 0),
    63949: (2, 0),
    136574: (0, 2),
    20860: (1, 0),
    54825: (1, 0),
    24940: (0, 1),
    41436: (0, 1),
    64022: (0, 1),
}


@dataclass(frozen=True, slots=True)
class NetworkRow:
    asn: int
    name: str
    hijacked: int
    targeted: int

    @property
    def total(self) -> int:
        return self.hijacked + self.targeted


def attacker_network_table(
    ledger: GroundTruthLedger, identified_domains: set[str] | None = None
) -> list[NetworkRow]:
    """Attacker-ASN concentration over identified victims (Table 5)."""
    counts: dict[int, list[int]] = {}
    for record in ledger.records:
        if identified_domains is not None and record.domain not in identified_domains:
            continue
        row = counts.setdefault(record.attacker_asn, [0, 0])
        if record.kind is AttackKind.HIJACKED:
            row[0] += 1
        else:
            row[1] += 1
    rows = [
        NetworkRow(asn, as_name(asn), hijacked, targeted)
        for asn, (hijacked, targeted) in counts.items()
    ]
    rows.sort(key=lambda r: (-r.total, r.asn))
    return rows


def format_network_table(rows: list[NetworkRow]) -> str:
    header = f"{'ASN':>7} {'Network':<22} {'Hij.':>5} {'Tar.':>5} {'Total':>6}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.asn:>7} {row.name:<22} {row.hijacked:>5} {row.targeted:>5} {row.total:>6}"
        )
    total_h = sum(r.hijacked for r in rows)
    total_t = sum(r.targeted for r in rows)
    lines.append("-" * len(header))
    lines.append(f"{'':>7} {'Total':<22} {total_h:>5} {total_t:>5} {total_h + total_t:>6}")
    return "\n".join(lines)
