"""Table 9 — suspiciously obtained certificates.

Reproduces the certificate analysis of Appendix B: per hijacked domain,
the malicious certificate's crt.sh id and issuing CA, plus the
retroactively determinable revocation status.  The key asymmetry: CAs
publishing CRLs leave an auditable record, while an OCSP-only issuer
(Let's Encrypt) yields UNKNOWN for expired certificates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import PipelineReport
from repro.ct.crtsh import CrtShService
from repro.tls.revocation import RevocationStatus


@dataclass(frozen=True, slots=True)
class CertificateRow:
    domain: str
    target: str
    crtsh_id: int
    issuer: str
    revocation: RevocationStatus | None  # None = no certificate at all


def certificate_table(
    report: PipelineReport, crtsh: CrtShService
) -> list[CertificateRow]:
    """One row per hijacked domain (cf. Table 9)."""
    rows: list[CertificateRow] = []
    for finding in report.hijacked():
        if finding.crtsh_id:
            entry = crtsh.lookup_id(finding.crtsh_id)
            revocation = entry.revocation if entry else None
            issuer = finding.issuer_ca
        else:
            revocation = None
            issuer = ""
        rows.append(
            CertificateRow(
                domain=finding.domain,
                target=finding.subdomain,
                crtsh_id=finding.crtsh_id,
                issuer=issuer,
                revocation=revocation,
            )
        )
    rows.sort(key=lambda r: r.domain)
    return rows


def ca_breakdown(rows: list[CertificateRow]) -> dict[str, int]:
    """Certificates per issuing CA (the 28 Let's Encrypt / 12 Comodo split)."""
    counts: dict[str, int] = {}
    for row in rows:
        if row.issuer:
            counts[row.issuer] = counts.get(row.issuer, 0) + 1
    return counts


def revocation_breakdown(rows: list[CertificateRow]) -> dict[str, int]:
    """Revocation statuses across the malicious certificates."""
    counts: dict[str, int] = {}
    for row in rows:
        key = row.revocation.value if row.revocation else "no-certificate"
        counts[key] = counts.get(key, 0) + 1
    return counts


def format_certificate_table(rows: list[CertificateRow]) -> str:
    header = f"{'Domain':<26} {'Target':<12} {'crt.sh ID':>10} {'Issuer CA':<16} {'CRL'}"
    lines = [header, "-" * len(header)]
    marks = {
        RevocationStatus.REVOKED: "Y",
        RevocationStatus.GOOD: "x",
        RevocationStatus.UNKNOWN: "-",
        None: ".",
    }
    for row in rows:
        lines.append(
            f"{row.domain:<26} {(row.target or '-'):<12} "
            f"{(row.crtsh_id or '-'):>10} {(row.issuer or '-'):<16} "
            f"{marks[row.revocation]}"
        )
    return "\n".join(lines)
