"""Counterfeit-page analysis (Appendix A of the paper).

Given HTTP context for a victim's legitimate service and for the
attacker IPs implicated in its hijack, decide whether the attacker page
is a counterfeit (same look, different code) and whether it carries
injected scripts — the signal that escalated the Kyrgyzstan campaign
from credential harvesting to malware delivery (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.scan.http import HttpContentStore, HttpResponse


@dataclass(frozen=True, slots=True)
class ContentVerdict:
    """Comparison of a suspect page against the legitimate one."""

    ip: str
    day: date
    mimics_look: bool        # same title and forms
    same_code: bool          # identical body fingerprint
    injected_scripts: tuple[str, ...]

    @property
    def is_counterfeit(self) -> bool:
        """Looks like the real page but is not the real code."""
        return self.mimics_look and not self.same_code

    @property
    def delivers_malware(self) -> bool:
        return bool(self.injected_scripts)


def compare_pages(
    legitimate: HttpResponse, suspect: HttpResponse, ip: str, day: date
) -> ContentVerdict:
    """Compare one suspect response against the legitimate page."""
    extra_scripts = tuple(
        script for script in suspect.scripts if script not in legitimate.scripts
    )
    return ContentVerdict(
        ip=ip,
        day=day,
        mimics_look=(
            suspect.title == legitimate.title and suspect.forms == legitimate.forms
        ),
        same_code=suspect.body_fingerprint == legitimate.body_fingerprint,
        injected_scripts=extra_scripts,
    )


def analyze_attacker_content(
    store: HttpContentStore,
    legitimate_ip: str,
    attacker_ips: tuple[str, ...],
    scan_dates: tuple[date, ...],
) -> list[ContentVerdict]:
    """Compare every attacker-IP page against the victim's page, per scan.

    Only scans where both sides have archived HTTP context contribute —
    exactly the paper's situation, where the analysis became possible
    once Censys added HTTP responses in late 2020.
    """
    verdicts: list[ContentVerdict] = []
    for day in scan_dates:
        legitimate = store.content_at(legitimate_ip, day)
        if legitimate is None:
            continue
        for ip in attacker_ips:
            suspect = store.content_at(ip, day)
            if suspect is None:
                continue
            verdicts.append(compare_pages(legitimate, suspect, ip, day))
    return verdicts


def format_content_verdicts(verdicts: list[ContentVerdict]) -> str:
    header = f"{'Date':<12} {'IP':<16} {'counterfeit':<12} {'malware':<8} scripts"
    lines = [header, "-" * len(header)]
    for verdict in verdicts:
        lines.append(
            f"{verdict.day.isoformat():<12} {verdict.ip:<16} "
            f"{'YES' if verdict.is_counterfeit else 'no':<12} "
            f"{'YES' if verdict.delivers_malware else 'no':<8} "
            f"{list(verdict.injected_scripts) or '-'}"
        )
    return "\n".join(lines)
