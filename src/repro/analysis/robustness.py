"""Multi-trial robustness evaluation over randomized worlds.

One randomized world shows the pipeline generalizes; a population of
them quantifies it.  ``run_trials`` builds N independent worlds (fresh
victims, dates, clouds, and modes per seed), runs the pipeline on each,
and aggregates recall / precision / channel-accuracy into a summary with
simple distribution statistics — the reproduction's substitute for the
paper's unmeasurable real-world recall.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.evaluation import evaluate_report
from repro.world.randomized import RandomWorldConfig, random_world
from repro.world.sim import run_study


@dataclass(frozen=True, slots=True)
class TrialOutcome:
    seed: int
    n_victims: int
    recall: float
    precision: float
    detection_accuracy: float  # exact-channel matches / victims found


@dataclass
class RobustnessSummary:
    trials: list[TrialOutcome] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    def _mean(self, values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    def _stdev(self, values: list[float]) -> float:
        if len(values) < 2:
            return 0.0
        mean = self._mean(values)
        return math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))

    @property
    def mean_recall(self) -> float:
        return self._mean([t.recall for t in self.trials])

    @property
    def min_recall(self) -> float:
        return min((t.recall for t in self.trials), default=0.0)

    @property
    def stdev_recall(self) -> float:
        return self._stdev([t.recall for t in self.trials])

    @property
    def mean_precision(self) -> float:
        return self._mean([t.precision for t in self.trials])

    @property
    def mean_detection_accuracy(self) -> float:
        return self._mean([t.detection_accuracy for t in self.trials])

    @property
    def perfect_trials(self) -> int:
        return sum(
            1 for t in self.trials if t.recall == 1.0 and t.precision == 1.0
        )


def run_trial(seed: int, config: RandomWorldConfig | None = None) -> TrialOutcome:
    """One randomized world end to end."""
    study = run_study(random_world(seed=seed, config=config))
    report = study.run_pipeline()
    evaluation = evaluate_report(report, study.ground_truth)
    found = max(evaluation.n_found, 1)
    return TrialOutcome(
        seed=seed,
        n_victims=evaluation.n_expected,
        recall=evaluation.recall,
        precision=evaluation.precision,
        detection_accuracy=evaluation.n_detection_correct / found,
    )


def run_trials(
    n_trials: int = 5,
    first_seed: int = 100,
    config: RandomWorldConfig | None = None,
) -> RobustnessSummary:
    """N independent randomized worlds."""
    if n_trials < 1:
        raise ValueError("need at least one trial")
    summary = RobustnessSummary()
    for offset in range(n_trials):
        summary.trials.append(run_trial(first_seed + offset, config))
    return summary


def format_robustness(summary: RobustnessSummary) -> str:
    header = f"{'seed':>6} {'victims':>8} {'recall':>7} {'precision':>10} {'channel':>8}"
    lines = [header, "-" * len(header)]
    for trial in summary.trials:
        lines.append(
            f"{trial.seed:>6} {trial.n_victims:>8} {trial.recall:>7.2f} "
            f"{trial.precision:>10.2f} {trial.detection_accuracy:>8.2f}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"mean recall {summary.mean_recall:.3f} "
        f"(min {summary.min_recall:.2f}, sd {summary.stdev_recall:.3f}); "
        f"mean precision {summary.mean_precision:.3f}; "
        f"{summary.perfect_trials}/{summary.n_trials} perfect trials"
    )
    return "\n".join(lines)
