"""Section 4.2-4.4 — population fractions and the shortlist funnel.

The paper's measured population: of 22M deployment maps, 96.5% are
stable, 2.95% transitions, 0.13% transients, and 0.35% too noisy to
classify; heuristics then shortlist 8143 domains, of which 1256 are
worth manual examination.  On synthetic data the absolute counts are
scenario parameters, so benches compare *fractions* and funnel shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import PipelineReport
from repro.core.types import PatternKind

#: The paper's population fractions over deployment maps.
PAPER_FRACTIONS = {
    "stable": 0.965,
    "transition": 0.0295,
    "transient": 0.0013,
    "noisy": 0.0035,
}


@dataclass(frozen=True, slots=True)
class ClassificationFractions:
    n_maps: int
    stable: float
    transition: float
    transient: float
    noisy: float

    def as_dict(self) -> dict[str, float]:
        return {
            "stable": self.stable,
            "transition": self.transition,
            "transient": self.transient,
            "noisy": self.noisy,
        }


def classification_fractions(report: PipelineReport) -> ClassificationFractions:
    """Measured population fractions over this run's deployment maps."""
    counts = {kind: 0 for kind in PatternKind}
    for classification in report.classifications.values():
        counts[classification.kind] += 1
    n_maps = sum(counts.values())
    if n_maps == 0:
        return ClassificationFractions(0, 0.0, 0.0, 0.0, 0.0)
    return ClassificationFractions(
        n_maps=n_maps,
        stable=counts[PatternKind.STABLE] / n_maps,
        transition=counts[PatternKind.TRANSITION] / n_maps,
        transient=counts[PatternKind.TRANSIENT] / n_maps,
        noisy=counts[PatternKind.NOISY] / n_maps,
    )


def funnel_rows(report: PipelineReport) -> list[tuple[str, int]]:
    """The stage-by-stage funnel as (stage, count) rows."""
    funnel = report.funnel
    return [
        ("deployment maps", funnel.n_maps),
        ("transient maps", funnel.n_transient),
        ("shortlisted", funnel.n_shortlisted),
        ("truly anomalous", funnel.n_truly_anomalous),
        ("worth examining", funnel.n_worth_examining),
        ("hijacked (direct)", funnel.n_t1_hijacked + funnel.n_t2_hijacked + funnel.n_t1_star),
        ("hijacked (pivot)", funnel.n_pivot_ip + funnel.n_pivot_ns),
        ("targeted", funnel.n_targeted),
    ]
