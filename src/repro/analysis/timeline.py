"""Per-victim incident timeline reconstruction.

Assembles, for one identified victim, the ordered forensic narrative the
paper walks through for mfa.gov.kg in Section 5.1: when the malicious
certificate was issued and CT-logged, when the weekly scans first and
last saw it deployed, when passive DNS observed the rogue delegation and
the redirections, and (if ever) when the certificate was revoked.  This
is the artifact an analyst or a notified victim actually reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.core.report import DomainFinding
from repro.ct.crtsh import CrtShService
from repro.dns.records import RRType
from repro.pdns.database import PassiveDNSDatabase
from repro.scan.dataset import ScanDataset
from repro.tls.revocation import RevocationStatus


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    day: date
    source: str   # "ct" | "scan" | "pdns" | "crl"
    description: str


def reconstruct_timeline(
    finding: DomainFinding,
    scan: ScanDataset,
    pdns: PassiveDNSDatabase,
    crtsh: CrtShService,
) -> list[TimelineEvent]:
    """The ordered evidence trail for one victim."""
    events: list[TimelineEvent] = []

    # Certificate issuance and logging (CT).
    entry = crtsh.lookup_id(finding.crtsh_id) if finding.crtsh_id else None
    if entry is not None:
        cert = entry.certificate
        events.append(
            TimelineEvent(
                cert.not_before, "ct",
                f"{cert.issuer} issues certificate for {cert.common_name} "
                f"(crt.sh id {cert.crtsh_id})",
            )
        )
        if entry.logged_at != cert.not_before:
            events.append(
                TimelineEvent(entry.logged_at, "ct", "certificate appears in CT log")
            )

    # Scan sightings of the malicious certificate.
    if finding.crtsh_id:
        sightings = sorted(
            {
                r.scan_date
                for r in scan.records_for(finding.domain)
                if r.certificate.crtsh_id == finding.crtsh_id
            }
        )
        if sightings:
            ips = sorted(
                {
                    r.ip
                    for r in scan.records_for(finding.domain)
                    if r.certificate.crtsh_id == finding.crtsh_id
                }
            )
            events.append(
                TimelineEvent(
                    sightings[0], "scan",
                    f"certificate first seen deployed at {', '.join(ips)}",
                )
            )
            if len(sightings) > 1:
                events.append(
                    TimelineEvent(
                        sightings[-1], "scan",
                        f"certificate last seen in scans ({len(sightings)} sweeps total)",
                    )
                )

    # Passive DNS: rogue delegations and redirections.
    attacker_ips = set(finding.attacker_ips)
    attacker_ns = set(finding.attacker_ns)
    for row in pdns.query_domain(finding.domain):
        if row.rtype is RRType.NS and row.rdata in attacker_ns:
            events.append(
                TimelineEvent(
                    row.first_seen, "pdns",
                    f"delegation observed pointing at {row.rdata} "
                    f"(until {row.last_seen})",
                )
            )
        elif row.rtype is RRType.A and row.rdata in attacker_ips:
            events.append(
                TimelineEvent(
                    row.first_seen, "pdns",
                    f"{row.rrname} observed resolving to {row.rdata} "
                    f"(until {row.last_seen})",
                )
            )

    # Revocation, where retroactively knowable.
    if entry is not None and entry.revocation is RevocationStatus.REVOKED:
        events.append(
            TimelineEvent(
                entry.certificate.not_after, "crl",
                "certificate appears revoked in the issuer's CRL",
            )
        )

    events.sort(key=lambda e: (e.day, e.source))
    return events


def format_timeline(domain: str, events: list[TimelineEvent]) -> str:
    lines = [f"incident timeline: {domain}", "-" * (20 + len(domain))]
    if not events:
        lines.append("(no recorded evidence)")
    for event in events:
        lines.append(f"{event.day.isoformat()}  [{event.source:<4}] {event.description}")
    return "\n".join(lines)
