"""Command-line interface.

    repro-hunt paper [--seed N] [--background N] [--save DIR]
                     [--jobs N] [--chunk-size N] [--profile FILE]
        Build the full paper scenario, run the pipeline, print every
        analysis table, and optionally export the datasets + findings.
        ``--jobs`` shards the parallel stages across worker processes;
        ``--profile`` writes the per-stage run manifest as JSON.

    Parallel runs (``paper``, ``hunt``, ``profile``) also accept
    ``--backend {auto,fork,spawn}`` (worker start method; spawn ships the
    inputs once through shared memory), ``--partition {hash,shard}``
    (shard hands workers (lo, hi) item ranges instead of pickled
    chunks), and ``--shard-cache`` (stream per-shard products into the
    stage cache so an interrupted run resumes from completed shards).

    repro-hunt quickstart
        The one-hijack demo world.

    repro-hunt hunt (--dir DIR | --segments DIR) [--jobs N] [--chunk-size N]
        Run the pipeline over a previously exported study directory
        (scan.jsonl / pdns.jsonl / ct.jsonl / as2org.jsonl) or over a
        memory-mapped segment bundle (``repro-hunt segments write``).

    repro-hunt segments {write,inspect,verify}
        Lay a study (or an ``--scale N`` synthetic world) out as a
        checksummed ``repro-segment/1`` bundle, print the verified
        header summaries, or checksum a bundle (nonzero exit on
        corruption).  See docs/performance.md.

    repro-hunt epoch {apply,status,delta}
        Grow a segment bundle by epochs: ``apply DIR --delta FILE``
        merges a ``repro-delta/1`` file onto the bundle as an id-stable
        overlay and re-runs only the delta's dirty set (with ``--cache``
        the clean domains' stage products are reused from the base
        run); ``status DIR`` lists the bundle's applied-epoch history;
        ``delta`` writes a deterministic scale-world delta file.  See
        docs/performance.md.

    repro-hunt profile [--seed N] [--jobs N] [--out FILE] [--json FILE]
                       [--manifest FILE]
        Profile a paper-scenario run: per-stage wall time, funnel
        cardinalities, and worker utilization — or render a previously
        saved run manifest with ``--manifest``.

    repro-hunt gallery
        Render the canonical deployment-map patterns (Figures 3-5).

    repro-hunt monitor [--seed N]
        The Section 7.1 reactive-monitoring demo over the paper world.

    repro-hunt explain DOMAIN [--seed N] [--background N]
        Print the decision provenance for one identified victim: every
        funnel transition the domain passed through, with the scan /
        pDNS / CT / routing evidence that drove it.

    repro-hunt sweep [--parameter P]
        Threshold-sensitivity sweeps over the paper study.

    repro-hunt robustness [--trials N]
        Randomized-world trials: recall/precision across fresh worlds.

    repro-hunt arena [--packs NAMES] [--detectors NAMES] [--faults SPEC]
                     [--seed N] [--background N] [--json FILE] [--list]
        Sweep every registered detector across the scenario packs,
        scoring precision/recall/F1/latency per cell against each
        pack's ground truth, and optionally write the BENCH_arena.json
        leaderboard.  See docs/detectors.md.

    repro-hunt golden [--update] [--dir DIR]
        Check (or, with ``--update``, regenerate) the golden regression
        reports pinned under tests/golden/.

    repro-hunt cache {stats,clear,gc} [--dir DIR] [--max-bytes N]
        Inspect or maintain the content-addressed stage cache.

    repro-hunt runs {list,show,diff,check,gc} [--dir DIR]
        Query the run ledger: list recorded runs, show one record,
        diff two runs (per-stage time/memory/cache deltas), check the
        newest run against its rolling baseline (the regression
        sentinel; nonzero exit on drift), or compact old history.

    repro-hunt metrics export [--manifest FILE] [--ledger DIR]
                              [--out FILE] [--check]
        Render a run manifest's metrics registry and/or the ledger
        summary as Prometheus/OpenMetrics text.

Stage caching: ``paper``, ``hunt``, and ``profile`` accept
``--cache DIR`` (default: the ``REPRO_CACHE_DIR`` environment variable)
to reuse stage results across runs, and ``--no-cache`` to force a full
recompute even when the environment variable is set.  Warm runs are
byte-identical to cold ones; hit/miss counters land in the manifest's
``cache`` section.  See docs/caching.md.

Fault injection: ``paper``, ``hunt``, and ``profile`` accept
``--faults SPEC`` (e.g. ``scan.drop_weeks=0.1,workers.crash=0.2``) plus
``--fault-seed N``; the run degrades deterministically and its losses
are reported in the manifest's ``data_quality`` section.  See
docs/fault_injection.md for the spec grammar.

Observability: ``paper``, ``hunt``, and ``profile`` accept
``--trace FILE`` to record a hierarchical span trace of the run — FILE
gets Chrome trace-event JSON (load it in Perfetto or chrome://tracing)
and FILE.spans.jsonl the raw span stream.  They also accept
``--events FILE`` (live heartbeat events as JSONL: run/stage/chunk
boundaries, retries, ETA) and ``--ledger [DIR]`` (append the run's
durable record to the run ledger; defaults to ``$REPRO_LEDGER_DIR``,
``--no-ledger`` disables).  On an interactive terminal a one-line
progress display tracks the run on stderr (``--progress`` forces it,
``-q`` suppresses it).  Diagnostics go to stderr through
:mod:`logging`; tune with ``--log-level`` or silence with ``-q``
(report tables always stay on stdout).  See docs/observability.md.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from datetime import datetime
from pathlib import Path

from repro.analysis.attacker_infra import attacker_network_table, format_network_table
from repro.analysis.certificates import certificate_table, format_certificate_table
from repro.analysis.evaluation import evaluate_report
from repro.analysis.sectors import format_sector_table, sector_table
from repro.core.pipeline import HijackPipeline
from repro.core.report import format_findings_table, format_funnel
from repro.exec import (
    ExecutionBackend,
    ProcessPoolBackend,
    RunMetrics,
    SerialBackend,
    format_run_metrics,
)
from repro.faults import FaultError, FaultPlan, FaultSpec, format_data_quality
from repro.io import (
    save_as2org,
    save_ct,
    save_findings,
    save_pdns,
    save_scan_dataset,
)
from repro.obs import Tracer, format_provenance

logger = logging.getLogger("repro.cli")


def _make_backend(args: argparse.Namespace) -> ExecutionBackend:
    if args.jobs <= 1:
        return SerialBackend()
    backend = getattr(args, "backend", "auto")
    return ProcessPoolBackend(
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        start_method=None if backend == "auto" else backend,
        partition=getattr(args, "partition", "hash"),
        shard_cache=getattr(args, "shard_cache", False),
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1 (got {value})")
    return value


def _add_executor_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for the parallel stages (1 = serial)",
    )
    parser.add_argument(
        "--chunk-size", type=_positive_int, default=None,
        help="items per worker task (default: auto)",
    )
    parser.add_argument(
        "--backend", choices=["auto", "fork", "spawn"], default="auto",
        help="worker start method: fork inherits the inputs copy-on-write, "
        "spawn ships them once through shared memory "
        "(default: auto = fork where available, else spawn)",
    )
    parser.add_argument(
        "--partition", choices=["hash", "shard"], default="hash",
        help="work partitioning: 'hash' pickles item chunks by key crc32, "
        "'shard' hands workers (lo, hi) item ranges they slice out of "
        "their own inputs (default: hash)",
    )
    parser.add_argument(
        "--shard-cache", action="store_true", default=False,
        help="with --partition shard and --cache: stream each shard's "
        "products into the stage cache so a killed run resumes from "
        "completed shards",
    )


def _fault_spec(text: str) -> FaultSpec:
    try:
        return FaultSpec.parse(text)
    except FaultError as error:
        raise argparse.ArgumentTypeError(str(error)) from error


def _add_faults_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", type=_fault_spec, default=None, metavar="SPEC",
        help="fault-injection spec, e.g. 'scan.drop_weeks=0.1,workers.crash=0.2'"
        " (see docs/fault_injection.md)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault plan's deterministic draws (default: 0)",
    )


def _fault_plan(args: argparse.Namespace) -> FaultPlan:
    return FaultPlan.from_spec(args.faults, seed=args.fault_seed)


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache", metavar="DIR", default=os.environ.get("REPRO_CACHE_DIR"),
        help="stage-cache directory (default: $REPRO_CACHE_DIR; unset = off)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", default=False,
        help="disable the stage cache even when $REPRO_CACHE_DIR is set",
    )


def _make_cache(args: argparse.Namespace):
    if args.no_cache or not args.cache:
        return None
    from repro.cache import StageCache

    return StageCache(args.cache)


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--events", metavar="FILE", default=None,
        help="write the live heartbeat event stream as JSONL "
        "(schema repro.obs.events/1)",
    )
    parser.add_argument(
        "--progress", action="store_true", default=False,
        help="force the one-line TTY progress display even when stderr "
        "is not a terminal",
    )
    _add_ledger_args(parser)


def _add_ledger_args(parser: argparse.ArgumentParser) -> None:
    from repro.obs.ledger import DEFAULT_LEDGER_DIR, LEDGER_ENV_VAR

    parser.add_argument(
        "--ledger", metavar="DIR", nargs="?", const=DEFAULT_LEDGER_DIR,
        default=os.environ.get(LEDGER_ENV_VAR),
        help="record the run in the ledger at DIR (bare --ledger uses "
        f"{DEFAULT_LEDGER_DIR}/; default: ${LEDGER_ENV_VAR}; unset = off)",
    )
    parser.add_argument(
        "--no-ledger", action="store_true", default=False,
        help=f"disable ledger recording even when ${LEDGER_ENV_VAR} is set",
    )


def _make_events(args: argparse.Namespace):
    """The run's composite event sink, or None when nothing listens.

    The JSONL stream is explicit (``--events FILE``); the TTY progress
    line is automatic on an interactive stderr unless quieted.  The
    caller must ``close()`` the sink after the run (use try/finally —
    a crashed run still flushes what it saw).
    """
    from repro.obs.events import (
        CompositeEventSink,
        JsonlEventSink,
        TTYProgressSink,
    )

    sinks = []
    if args.events:
        sinks.append(JsonlEventSink(args.events))
    quiet = getattr(args, "quiet", False)
    if args.progress or (not quiet and sys.stderr.isatty()):
        sinks.append(TTYProgressSink(sys.stderr))
    if not sinks:
        return None
    return sinks[0] if len(sinks) == 1 else CompositeEventSink(sinks)


def _close_events(sink) -> None:
    if sink is not None:
        sink.close()


def _make_ledger(args: argparse.Namespace):
    if args.no_ledger or not args.ledger:
        return None
    from repro.obs import RunLedger

    return RunLedger(args.ledger)


def _add_trace_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record a span trace: Chrome trace-event JSON at FILE "
        "(Perfetto / chrome://tracing) plus FILE.spans.jsonl",
    )


def _make_tracer(args: argparse.Namespace) -> Tracer | None:
    return Tracer() if args.trace else None


def _write_trace(tracer: Tracer | None, args: argparse.Namespace) -> None:
    if tracer is None:
        return
    tracer.write_chrome(args.trace)
    tracer.write_jsonl(f"{args.trace}.spans.jsonl")
    logger.info(
        "trace written to %s (spans: %s.spans.jsonl)", args.trace, args.trace
    )


def _print_data_quality(metrics: RunMetrics) -> None:
    if metrics.data_quality and metrics.data_quality.get("degraded"):
        from repro.faults.quality import DataQuality

        print()
        print(format_data_quality(DataQuality.from_dict(metrics.data_quality)))


def _cmd_paper(args: argparse.Namespace) -> int:
    from repro.world.scenarios import paper_study

    logger.info(
        "building paper scenario (seed=%d, background=%d)...",
        args.seed, args.background,
    )
    study = paper_study(seed=args.seed, n_background=args.background)
    backend = _make_backend(args)
    tracer = _make_tracer(args)
    events = _make_events(args)
    try:
        report, metrics = study.profile_pipeline(
            backend=backend, faults=_fault_plan(args), tracer=tracer,
            cache=_make_cache(args),
            events=events, ledger=_make_ledger(args),
        )
    finally:
        _close_events(events)

    _print_data_quality(metrics)
    print()
    print(format_funnel(report.funnel))
    print()
    print(format_findings_table(report.findings))
    print()
    identified = {f.domain for f in report.findings}
    print(format_sector_table(sector_table(study.ground_truth, identified)))
    print()
    print(format_network_table(attacker_network_table(study.ground_truth, identified)))
    print()
    print(format_certificate_table(certificate_table(report, study.crtsh)))
    print()
    evaluation = evaluate_report(report, study.ground_truth)
    print(
        f"score: {evaluation.n_detection_correct}/{evaluation.n_expected} exact, "
        f"precision={evaluation.precision:.2f} recall={evaluation.recall:.2f}"
    )

    if args.save:
        directory = Path(args.save)
        save_scan_dataset(study.scan, directory / "scan.jsonl")
        save_pdns(study.pdns, directory / "pdns.jsonl")
        save_ct(study.ct_log, study.revocations, directory / "ct.jsonl")
        save_as2org(study.as2org, directory / "as2org.jsonl")
        save_findings(report.findings, directory / "findings.jsonl")
        logger.info("study exported to %s/", directory)
    if args.profile:
        metrics.write(args.profile)
        logger.info("run manifest written to %s", args.profile)
    _write_trace(tracer, args)
    return 0


def _cmd_quickstart(_args: argparse.Namespace) -> int:
    from repro.world.scenarios import small_world
    from repro.world.sim import run_study

    study = run_study(small_world())
    report = study.run_pipeline()
    print(format_funnel(report.funnel))
    print()
    print(format_findings_table(report.findings))
    return 0


def _cmd_hunt(args: argparse.Namespace) -> int:
    if bool(args.dir) == bool(args.segments):
        print(
            "error: pass exactly one of --dir (JSONL export) or "
            "--segments (segment bundle)",
            file=sys.stderr,
        )
        return 2
    try:
        if args.segments:
            from repro.segments import SegmentError, load_segment_inputs

            logger.info("mapping segments from %s/ ...", args.segments)
            try:
                inputs = load_segment_inputs(args.segments)
            except SegmentError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            pipeline = HijackPipeline(inputs, faults=_fault_plan(args))
        else:
            directory = Path(args.dir)
            logger.info("loading study from %s/ ...", directory)
            pipeline = HijackPipeline.from_directory(
                directory, faults=_fault_plan(args)
            )
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    tracer = _make_tracer(args)
    events = _make_events(args)
    try:
        report, metrics = pipeline.profile(
            _make_backend(args), tracer=tracer,
            cache=_make_cache(args),
            events=events, ledger=_make_ledger(args),
        )
    finally:
        _close_events(events)
    _print_data_quality(metrics)
    print(format_funnel(report.funnel))
    print()
    print(format_findings_table(report.findings))
    if args.out:
        save_findings(report.findings, args.out)
        logger.info("findings written to %s", args.out)
    _write_trace(tracer, args)
    return 0


def _cmd_gallery(_args: argparse.Namespace) -> int:
    from repro.analysis.gallery import render_gallery

    print(render_gallery())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    if args.manifest:
        try:
            metrics = RunMetrics.read(args.manifest)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot read manifest: {error}", file=sys.stderr)
            return 2
        print(format_run_metrics(metrics))
        return 0

    from repro.world.scenarios import paper_study

    logger.info(
        "profiling paper scenario (seed=%d, background=%d, jobs=%d)...",
        args.seed, args.background, args.jobs,
    )
    study = paper_study(seed=args.seed, n_background=args.background)
    backend = _make_backend(args)
    tracer = _make_tracer(args)
    events = _make_events(args)
    try:
        _report, metrics = study.profile_pipeline(
            backend=backend, faults=_fault_plan(args), tracer=tracer,
            cache=_make_cache(args),
            events=events, memory=args.memory, ledger=_make_ledger(args),
        )
    finally:
        _close_events(events)
    print(format_run_metrics(metrics))
    _print_data_quality(metrics)
    if args.out:
        metrics.write(args.out)
        logger.info("run manifest written to %s", args.out)
    if args.json:
        from repro.core.pipeline import PipelineInputs
        from repro.obs.perf import perf_summary, write_perf_summary

        summary = perf_summary(
            study.scan,
            study.periods,
            metrics,
            inputs=PipelineInputs.from_study(study),
        )
        write_perf_summary(args.json, summary)
        kernel = summary["deployment_kernel"]
        funnel = summary["funnel_stages"]
        logger.info(
            "perf summary written to %s (deployment kernel %sx faster, "
            "payload %sx smaller; classify %sx, shortlist %sx, "
            "inspect %sx, assemble %sx)",
            args.json, kernel["speedup"], kernel["payload_ratio"],
            funnel["classify"]["speedup"], funnel["shortlist"]["speedup"],
            funnel["inspect"]["speedup"], funnel["assemble"]["speedup"],
        )
    _write_trace(tracer, args)
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.core.reactive import ReactiveMonitor
    from repro.world.scenarios import paper_study

    study = paper_study(seed=args.seed)
    monitor = ReactiveMonitor(study.world.resolver)
    baseline_at = datetime(2017, 2, 1)
    for record in study.ground_truth.records:
        monitor.watch_from_current_state(record.domain, baseline_at)
    alerts = monitor.scan_log(study.world.ct_log)
    for alert in sorted(alerts, key=lambda a: a.issued_on):
        print(
            f"{alert.issued_on} ALERT {alert.domain:<24} {alert.reason:<18} "
            f"crt.sh={alert.crtsh_id}"
        )
    malicious = {r.crtsh_id for r in study.ground_truth.records if r.crtsh_id}
    caught = malicious & {a.crtsh_id for a in alerts}
    print(f"\ncaught {len(caught)}/{len(malicious)} malicious issuances, "
          f"{len(alerts) - len(caught)} false alarms")
    return 0


def _unknown_domain(domain: str, report) -> int:
    """The shared unknown-domain exit path: clear error, best hints.

    Suggests the finding domains *closest to what was typed* (typo
    recovery via difflib) before falling back to the first few
    identified victims, and always exits 2 — never a bare traceback.
    """
    import difflib

    known = sorted(f.domain for f in report.findings)
    print(f"error: {domain} is not an identified victim", file=sys.stderr)
    if not known:
        print("hint: this run identified no victims at all", file=sys.stderr)
        return 2
    close = difflib.get_close_matches(domain, known, n=5, cutoff=0.5)
    suggested = close if close else known[:8]
    suffix = "" if len(suggested) == len(known) else ", ..."
    print(f"hint: try one of {', '.join(suggested)}{suffix}", file=sys.stderr)
    return 2


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.analysis.timeline import format_timeline, reconstruct_timeline
    from repro.world.scenarios import paper_study

    study = paper_study(seed=args.seed)
    report = study.run_pipeline()
    finding = report.finding_for(args.domain)
    if finding is None:
        return _unknown_domain(args.domain, report)
    events = reconstruct_timeline(finding, study.scan, study.pdns, study.crtsh)
    print(format_timeline(args.domain, events))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.world.scenarios import paper_study

    logger.info(
        "building paper scenario (seed=%d, background=%d)...",
        args.seed, args.background,
    )
    study = paper_study(seed=args.seed, n_background=args.background)
    report = study.run_pipeline()
    finding = report.finding_for(args.domain)
    if finding is None:
        return _unknown_domain(args.domain, report)
    if args.json:
        import json

        from repro.io.reports import finding_to_row

        payload = json.dumps(finding_to_row(finding), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n")
            logger.info("findings provenance written to %s", args.json)
        return 0
    print(format_provenance(finding.domain, finding.provenance))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.sweeps import (
        format_sweep,
        sweep_corroboration_window,
        sweep_transient_threshold,
        sweep_visibility_floor,
    )
    from repro.world.scenarios import paper_study

    sweeps = {
        "transient": sweep_transient_threshold,
        "visibility": sweep_visibility_floor,
        "window": sweep_corroboration_window,
    }
    study = paper_study(seed=args.seed)
    selected = sweeps if args.parameter == "all" else {args.parameter: sweeps[args.parameter]}
    for runner in selected.values():
        print(format_sweep(runner(study)))
        print()
    return 0


#: The seeds whose paper-scenario reports are pinned as golden files.
GOLDEN_SEEDS = (7, 11, 13)
#: Background-domain count for the golden runs (kept small so the check
#: finishes in seconds; the funnel is identical in shape to the default).
GOLDEN_BACKGROUND = 40
#: The fault-degraded golden variant: one seed's study run under this
#: canonical data-channel fault plan (no worker channels, so every
#: backend takes the identical degradation path).  Pinned alongside the
#: fault-free reports to lock the degraded funnel's behavior too.
GOLDEN_FAULT_SEED = 11
GOLDEN_FAULT_SPEC = "scan.drop_weeks=0.2,pdns.blackouts=1,ct.delay_days=3"


def _golden_fault_plan():
    from repro.faults import FaultPlan

    return FaultPlan.from_spec(GOLDEN_FAULT_SPEC, seed=GOLDEN_FAULT_SEED)


def _cmd_golden(args: argparse.Namespace) -> int:
    from repro.io.golden import encode_report, golden_faults_filename, golden_filename
    from repro.world.scenarios import paper_study

    directory = Path(args.dir)
    failures = 0
    variants = [
        (seed, golden_filename(seed), None) for seed in GOLDEN_SEEDS
    ]
    variants.append(
        (
            GOLDEN_FAULT_SEED,
            golden_faults_filename(GOLDEN_FAULT_SEED),
            _golden_fault_plan(),
        )
    )
    for seed, filename, faults in variants:
        study = paper_study(seed=seed, n_background=args.background)
        report = study.run_pipeline(faults=faults)
        encoded = encode_report(report)
        path = directory / filename
        if args.update:
            directory.mkdir(parents=True, exist_ok=True)
            path.write_text(encoded)
            print(f"wrote {path} ({len(report.findings)} findings)")
        elif not path.exists():
            print(f"MISSING {path} (run with --update to create)", file=sys.stderr)
            failures += 1
        elif path.read_text() != encoded:
            print(
                f"MISMATCH {path}: pipeline output diverged from the pinned "
                "report (if the change is intentional, rerun with --update)",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(f"ok {path}")
    return 1 if failures else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import StageCache

    directory = args.dir or os.environ.get("REPRO_CACHE_DIR")
    if not directory:
        print(
            "error: no cache directory (pass --dir or set $REPRO_CACHE_DIR)",
            file=sys.stderr,
        )
        return 2
    cache = StageCache(directory)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache {cache.root}: {stats.entries} entries, {stats.total_bytes} bytes")
    elif args.action == "clear":
        removed = cache.clear()
        print(f"cache {cache.root}: removed {removed} entries")
    else:  # gc
        if args.max_bytes is None:
            print("error: gc requires --max-bytes", file=sys.stderr)
            return 2
        result = cache.gc(args.max_bytes)
        print(
            f"cache {cache.root}: evicted {result.removed} entries "
            f"({result.freed_bytes} bytes), kept {result.kept} "
            f"({result.kept_bytes} bytes)"
        )
    return 0


def _cmd_segments(args: argparse.Namespace) -> int:
    import json

    from repro.segments import SegmentError, segment_paths, verify_segment

    if args.segments_command == "write":
        directory = Path(args.out)
        if args.scale:
            from repro.world.scale import write_scale_segments

            logger.info(
                "writing %d-domain scale world to %s/ ...", args.scale, directory
            )
            paths = write_scale_segments(
                args.scale, directory, n_active=args.active, seed=args.seed
            )
        else:
            from repro.core.pipeline import PipelineInputs
            from repro.segments import write_segments
            from repro.world.scenarios import paper_study

            logger.info(
                "writing paper study (seed=%d, background=%d) to %s/ ...",
                args.seed, args.background, directory,
            )
            study = paper_study(seed=args.seed, n_background=args.background)
            paths = write_segments(PipelineInputs.from_study(study), directory)
        total = 0
        for _name, path in sorted(paths.items()):
            size = path.stat().st_size
            total += size
            print(f"wrote {path} ({size} bytes)")
        print(f"total {total} bytes in {directory}/")
        return 0

    # inspect / verify: checksum every segment of the bundle; a typed
    # SegmentError (truncation, bit flip, wrong table) fails the command
    # instead of ever surfacing garbage rows.
    failures = 0
    summaries = {}
    for name, path in sorted(segment_paths(args.dir).items()):
        if not path.exists():
            print(f"MISSING {path}", file=sys.stderr)
            failures += 1
            continue
        try:
            summaries[name] = verify_segment(path)
        except SegmentError as error:
            print(f"CORRUPT {path}: {error}", file=sys.stderr)
            failures += 1
            continue
        if args.segments_command == "verify":
            print(f"ok {path}")
    if args.segments_command == "inspect" and summaries:
        print(json.dumps(summaries, indent=2, sort_keys=True))
    return 1 if failures else 0


_EPOCH_STATE_SCHEMA = "repro.epochs.applied/1"


def _epoch_state(directory: Path) -> dict:
    import json

    path = directory / "epochs.json"
    if not path.exists():
        return {"schema": _EPOCH_STATE_SCHEMA, "epochs": []}
    data = json.loads(path.read_text())
    if data.get("schema") != _EPOCH_STATE_SCHEMA:
        raise ValueError(
            f"{path}: unsupported epoch-state schema {data.get('schema')!r}"
        )
    return data


def _cmd_epoch(args: argparse.Namespace) -> int:
    import json

    if args.epoch_command == "delta":
        from repro.epochs import write_delta
        from repro.world.scale import make_delta, scale_world

        logger.info(
            "building %d-domain scale world (active=%d, seed=%d)...",
            args.scale, args.active, args.seed,
        )
        inputs = scale_world(args.scale, n_active=args.active, seed=args.seed)
        delta = make_delta(
            inputs, seed=args.seed, fraction=args.fraction, epoch=args.epoch
        )
        path = write_delta(delta, args.out)
        counts = delta.counts()
        print(
            f"wrote {path} (epoch {delta.epoch}: {counts['scan_rows']} scan "
            f"rows, {counts['pdns_observations']} pdns, "
            f"{counts['ct_entries']} ct, digest {delta.digest()[:12]})"
        )
        return 0

    directory = Path(args.dir)

    if args.epoch_command == "status":
        try:
            state = _epoch_state(directory)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        records = state["epochs"]
        if not records:
            print(f"bundle {directory}: no epochs applied")
            return 0
        print(f"bundle {directory}: {len(records)} epoch(s) applied")
        for record in records:
            print(
                f"  epoch {record['epoch']:>3}  {record['applied_at']}  "
                f"dirty {record['domains_dirty']:>6}/{record['domains']}  "
                f"reused {record['domains_reused']:>6}  "
                f"seeded {str(record['seeded']).lower():<5}  "
                f"{record['label'] or record['digest'][:12]}"
            )
        return 0

    # apply
    from repro.epochs import merge_inputs, read_delta, run_epoch
    from repro.segments import SegmentError, load_segment_inputs

    try:
        logger.info("mapping segments from %s/ ...", directory)
        inputs = load_segment_inputs(directory)
        state = _epoch_state(directory)
        # Replay already-applied epochs so the new delta lands on the
        # bundle's *current* state, not the original base segments.
        for record in state["epochs"]:
            prior = read_delta(directory / "deltas" / record["file"])
            inputs = merge_inputs(inputs, prior)
        delta = read_delta(args.delta)
    except (SegmentError, ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    tracer = _make_tracer(args)
    events = _make_events(args)
    try:
        report, metrics, dirty = run_epoch(
            inputs, delta,
            faults=_fault_plan(args),
            backend=_make_backend(args),
            cache=_make_cache(args),
            tracer=tracer, events=events, ledger=_make_ledger(args),
            label=f"epoch-{delta.epoch}",
        )
    finally:
        _close_events(events)

    _print_data_quality(metrics)
    stats = metrics.epoch or {}
    print(
        f"epoch {delta.epoch} ({delta.label or 'unlabeled'}): "
        f"{stats.get('domains_dirty', len(dirty.all_dirty))} dirty of "
        f"{stats.get('domains', '?')} domains, "
        f"{stats.get('domains_reused', 0)} reused"
        + (
            f" (reuse off: {stats['reuse_disabled']})"
            if stats.get("reuse_disabled")
            else ""
        )
    )
    print()
    print(format_funnel(report.funnel))
    print()
    print(format_findings_table(report.findings))
    if args.out:
        save_findings(report.findings, args.out)
        logger.info("findings written to %s", args.out)
    if args.profile:
        metrics.write(args.profile)
        logger.info("run manifest written to %s", args.profile)

    # Bank the applied delta so the next apply (and a cold full replay)
    # reconstructs the same merged state.
    import shutil

    deltas_dir = directory / "deltas"
    deltas_dir.mkdir(parents=True, exist_ok=True)
    digest = delta.digest()
    filename = f"epoch-{len(state['epochs']) + 1:04d}-{digest[:12]}.delta"
    shutil.copyfile(args.delta, deltas_dir / filename)
    state["epochs"].append(
        {
            "epoch": delta.epoch,
            "label": delta.label,
            "file": filename,
            "digest": digest,
            "applied_at": datetime.now().isoformat(timespec="seconds"),
            "counts": delta.counts(),
            "domains": stats.get("domains"),
            "domains_dirty": stats.get("domains_dirty"),
            "domains_reused": stats.get("domains_reused", 0),
            "seeded": stats.get("seeded", False),
        }
    )
    (directory / "epochs.json").write_text(
        json.dumps(state, indent=2, sort_keys=True) + "\n"
    )
    logger.info("epoch recorded in %s", directory / "epochs.json")
    _write_trace(tracer, args)
    return 0


def _cmd_arena(args: argparse.Namespace) -> int:
    import repro.detect  # registers the built-in detectors
    from repro.detect import list_detectors
    from repro.detect.arena import format_arena, run_arena, write_arena_summary
    from repro.world.scenarios import get_pack, list_packs

    if args.list:
        print("scenario packs:")
        for name in list_packs():
            pack = get_pack(name)
            print(f"  {name:<12} seed={pack.default_seed} "
                  f"background={pack.default_background}  {pack.description}")
        print("detectors:")
        for name in list_detectors():
            detector = repro.detect.create_detector(name)
            print(f"  {name:<18} inputs={','.join(detector.inputs)}")
        return 0

    packs = args.packs.split(",") if args.packs else None
    detectors = args.detectors.split(",") if args.detectors else None
    logger.info(
        "arena sweep: packs=%s detectors=%s",
        ",".join(packs) if packs else "all",
        ",".join(detectors) if detectors else "all",
    )
    try:
        result = run_arena(
            packs,
            detectors,
            seed=args.seed,
            n_background=args.background,
            faults=args.faults,
            fault_seed=args.fault_seed,
            cache=_make_cache(args),
            ledger=_make_ledger(args),
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    print(format_arena(result))
    if args.json:
        write_arena_summary(result, args.json)
        logger.info("arena summary written to %s", args.json)
    return 0


def _runs_ledger(args: argparse.Namespace):
    from repro.obs import RunLedger
    from repro.obs.ledger import DEFAULT_LEDGER_DIR, ledger_dir_from_env

    directory = args.dir or ledger_dir_from_env() or DEFAULT_LEDGER_DIR
    if not Path(directory).exists():
        print(
            f"error: no ledger at {directory} "
            "(pass --dir, set $REPRO_LEDGER_DIR, or record a run with --ledger)",
            file=sys.stderr,
        )
        return None
    return RunLedger(directory)


def _cmd_runs(args: argparse.Namespace) -> int:
    import json

    from repro.obs.ledger import format_diff, format_runs_table
    from repro.obs.sentinel import Tolerances, check_run, format_sentinel

    ledger = _runs_ledger(args)
    if ledger is None:
        return 2

    if args.runs_command == "list":
        records = ledger.records(kind=args.kind, limit=args.limit)
        if not records:
            print(f"ledger {ledger.root}: no runs recorded")
            return 0
        print(f"ledger {ledger.root}: {len(records)} run(s)")
        print(format_runs_table(records))
        if ledger.evicted:
            print(
                f"warning: {ledger.evicted} corrupt entr(y/ies) evicted",
                file=sys.stderr,
            )
        return 0

    if args.runs_command == "show":
        record = ledger.load(args.run)
        if record is None:
            print(
                f"error: run {args.run!r} not found (or ambiguous / corrupt) "
                f"in {ledger.root}",
                file=sys.stderr,
            )
            return 2
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return 0

    if args.runs_command == "diff":
        ids = args.runs
        if not ids:
            records = ledger.records(limit=2)
            if len(records) < 2:
                print(
                    f"error: ledger {ledger.root} holds {len(records)} run(s); "
                    "diff needs two (or pass run ids explicitly)",
                    file=sys.stderr,
                )
                return 2
            old, new = records[-2], records[-1]
        else:
            old, new = ledger.load(ids[0]), ledger.load(ids[1])
            if old is None or new is None:
                missing = ids[0] if old is None else ids[1]
                print(f"error: run {missing!r} not found in {ledger.root}", file=sys.stderr)
                return 2
        print(format_diff(old, new))
        return 0

    if args.runs_command == "check":
        tolerances = Tolerances.from_args(
            total_time=args.tolerance_total,
            stage_time=args.tolerance_stage,
            memory=args.tolerance_memory,
            cache_hit_rate=args.tolerance_cache,
            f1=args.tolerance_f1,
            min_stage_seconds=args.min_stage_seconds,
            min_baseline=args.min_baseline,
        )
        try:
            report = check_run(
                ledger, run_id=args.run, window=args.window,
                tolerances=tolerances,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(format_sentinel(report))
        return 0 if report.ok else 1

    # gc
    result = ledger.gc(args.keep)
    print(
        f"ledger {ledger.root}: kept {result['kept']} run(s), dropped "
        f"{result['dropped_entries']} entr(y/ies), removed "
        f"{result['removed_files']} record file(s)"
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import RunLedger, render_openmetrics, validate_openmetrics
    from repro.obs.ledger import ledger_dir_from_env

    snapshot = None
    funnel = None
    if args.manifest:
        try:
            metrics = RunMetrics.read(args.manifest)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot read manifest: {error}", file=sys.stderr)
            return 2
        snapshot = metrics.metrics
        funnel = metrics.funnel
    directory = args.ledger or ledger_dir_from_env()
    ledger = (
        RunLedger(directory)
        if directory and Path(directory).exists()
        else None
    )
    if snapshot is None and ledger is None:
        print(
            "error: nothing to export (pass --manifest FILE and/or --ledger DIR)",
            file=sys.stderr,
        )
        return 2
    text = render_openmetrics(snapshot, ledger=ledger, funnel=funnel)
    if args.check:
        errors = validate_openmetrics(text)
        if errors:
            for error in errors:
                print(f"error: {error}", file=sys.stderr)
            return 1
    if args.out:
        Path(args.out).write_text(text)
        logger.info("OpenMetrics exposition written to %s", args.out)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from repro.analysis.robustness import format_robustness, run_trials
    from repro.world.randomized import RandomWorldConfig

    config = RandomWorldConfig(n_victims=args.victims)
    summary = run_trials(n_trials=args.trials, first_seed=args.seed, config=config)
    print(format_robustness(summary))
    return 0 if summary.min_recall == 1.0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hunt",
        description="Retroactive identification of targeted DNS infrastructure hijacking",
    )
    parser.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"],
        default="info", help="stderr diagnostics verbosity (default: info)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", default=False,
        help="suppress progress diagnostics (same as --log-level error)",
    )
    # The same flags are accepted after the subcommand; SUPPRESS keeps a
    # subparser's untouched defaults from clobbering root-level values.
    logging_flags = argparse.ArgumentParser(add_help=False)
    logging_flags.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"],
        default=argparse.SUPPRESS, help=argparse.SUPPRESS,
    )
    logging_flags.add_argument(
        "-q", "--quiet", action="store_true",
        default=argparse.SUPPRESS, help=argparse.SUPPRESS,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    paper = sub.add_parser("paper", parents=[logging_flags], help="run the full paper scenario")
    paper.add_argument("--seed", type=int, default=7)
    paper.add_argument("--background", type=int, default=150)
    paper.add_argument("--save", metavar="DIR", help="export datasets + findings")
    paper.add_argument(
        "--profile", metavar="FILE", help="write the per-stage run manifest (JSON)"
    )
    _add_executor_args(paper)
    _add_faults_args(paper)
    _add_cache_args(paper)
    _add_trace_arg(paper)
    _add_obs_args(paper)
    paper.set_defaults(func=_cmd_paper)

    quickstart = sub.add_parser("quickstart", parents=[logging_flags], help="one-hijack demo world")
    quickstart.set_defaults(func=_cmd_quickstart)

    hunt = sub.add_parser("hunt", parents=[logging_flags], help="run the pipeline over an exported study")
    hunt.add_argument("--dir", default=None, help="directory with *.jsonl exports")
    hunt.add_argument(
        "--segments", metavar="DIR", default=None,
        help="run over a memory-mapped segment bundle instead of a JSONL "
        "export (see 'repro-hunt segments write')",
    )
    hunt.add_argument("--out", help="write findings JSONL here")
    _add_executor_args(hunt)
    _add_faults_args(hunt)
    _add_cache_args(hunt)
    _add_trace_arg(hunt)
    _add_obs_args(hunt)
    hunt.set_defaults(func=_cmd_hunt)

    profile = sub.add_parser(
        "profile", parents=[logging_flags], help="per-stage wall time / cardinality profile of a run"
    )
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument("--background", type=int, default=150)
    profile.add_argument("--out", metavar="FILE", help="write the run manifest (JSON)")
    profile.add_argument(
        "--json",
        metavar="FILE",
        help="write a BENCH_perf.json summary (stage wall times, dataset "
        "bytes, measured legacy-vs-columnar kernel time and payload bytes)",
    )
    profile.add_argument(
        "--manifest", metavar="FILE", help="render an existing manifest instead"
    )
    profile.add_argument(
        "--memory", action="store_true", default=False,
        help="trace per-stage allocations with tracemalloc (slower; "
        "peak RSS is always recorded)",
    )
    _add_executor_args(profile)
    _add_faults_args(profile)
    _add_cache_args(profile)
    _add_trace_arg(profile)
    _add_obs_args(profile)
    profile.set_defaults(func=_cmd_profile)

    gallery = sub.add_parser("gallery", parents=[logging_flags], help="render the pattern gallery")
    gallery.set_defaults(func=_cmd_gallery)

    monitor = sub.add_parser("monitor", parents=[logging_flags], help="reactive CT monitoring demo")
    monitor.add_argument("--seed", type=int, default=7)
    monitor.set_defaults(func=_cmd_monitor)

    timeline = sub.add_parser(
        "timeline", parents=[logging_flags], help="incident timeline for one identified victim"
    )
    timeline.add_argument("--domain", required=True)
    timeline.add_argument("--seed", type=int, default=7)
    timeline.set_defaults(func=_cmd_timeline)

    explain = sub.add_parser(
        "explain", parents=[logging_flags], help="decision provenance for one identified victim"
    )
    explain.add_argument("domain", help="victim domain to explain")
    explain.add_argument("--seed", type=int, default=7)
    explain.add_argument("--background", type=int, default=150)
    explain.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the finding + provenance trail as JSON ('-' for stdout)",
    )
    explain.set_defaults(func=_cmd_explain)

    sweep = sub.add_parser("sweep", parents=[logging_flags], help="threshold-sensitivity sweeps")
    sweep.add_argument(
        "--parameter", choices=["transient", "visibility", "window", "all"],
        default="all",
    )
    sweep.add_argument("--seed", type=int, default=7)
    sweep.set_defaults(func=_cmd_sweep)

    robustness = sub.add_parser(
        "robustness", parents=[logging_flags], help="randomized-world recall/precision trials"
    )
    robustness.add_argument("--trials", type=int, default=5)
    robustness.add_argument("--victims", type=int, default=6)
    robustness.add_argument("--seed", type=int, default=100)
    robustness.set_defaults(func=_cmd_robustness)

    arena = sub.add_parser(
        "arena", parents=[logging_flags],
        help="sweep every registered detector across the scenario packs",
    )
    arena.add_argument(
        "--packs", metavar="NAMES", default=None,
        help="comma-separated scenario packs (default: all registered)",
    )
    arena.add_argument(
        "--detectors", metavar="NAMES", default=None,
        help="comma-separated detectors (default: all registered)",
    )
    arena.add_argument(
        "--seed", type=int, default=None,
        help="override every pack's canonical seed",
    )
    arena.add_argument(
        "--background", type=int, default=None,
        help="override every pack's background-domain count",
    )
    arena.add_argument(
        "--json", metavar="FILE",
        help="write the BENCH_arena.json leaderboard summary",
    )
    arena.add_argument(
        "--list", action="store_true", default=False,
        help="list registered packs and detectors, then exit",
    )
    _add_faults_args(arena)
    _add_cache_args(arena)
    _add_ledger_args(arena)
    arena.set_defaults(func=_cmd_arena)

    golden = sub.add_parser(
        "golden", parents=[logging_flags], help="check or regenerate the golden regression reports"
    )
    golden.add_argument(
        "--update", action="store_true", help="rewrite the pinned reports"
    )
    golden.add_argument("--dir", default="tests/golden", help="golden file directory")
    golden.add_argument("--background", type=int, default=GOLDEN_BACKGROUND)
    golden.set_defaults(func=_cmd_golden)

    segments = sub.add_parser(
        "segments", parents=[logging_flags],
        help="write, inspect, or verify memory-mapped segment bundles",
    )
    segments_sub = segments.add_subparsers(dest="segments_command", required=True)

    segments_write = segments_sub.add_parser(
        "write", parents=[logging_flags],
        help="lay a study out as a segment directory",
    )
    segments_write.add_argument(
        "--out", metavar="DIR", required=True, help="segment bundle directory"
    )
    segments_write.add_argument(
        "--scale", type=_positive_int, default=None, metavar="N",
        help="write an N-domain synthetic scale world instead of the "
        "paper study",
    )
    segments_write.add_argument(
        "--active", type=_positive_int, default=200,
        help="active (full-funnel) domains in the scale world (default: 200)",
    )
    segments_write.add_argument("--seed", type=int, default=7)
    segments_write.add_argument(
        "--background", type=int, default=150,
        help="background domains of the paper study (ignored with --scale)",
    )
    segments_write.set_defaults(func=_cmd_segments)

    segments_inspect = segments_sub.add_parser(
        "inspect", parents=[logging_flags],
        help="print every segment's verified header summary as JSON",
    )
    segments_inspect.add_argument("dir", help="segment bundle directory")
    segments_inspect.set_defaults(func=_cmd_segments)

    segments_verify = segments_sub.add_parser(
        "verify", parents=[logging_flags],
        help="checksum every segment of a bundle (nonzero exit on corruption)",
    )
    segments_verify.add_argument("dir", help="segment bundle directory")
    segments_verify.set_defaults(func=_cmd_segments)

    epoch = sub.add_parser(
        "epoch", parents=[logging_flags],
        help="apply epoch deltas incrementally over a segment bundle",
    )
    epoch_sub = epoch.add_subparsers(dest="epoch_command", required=True)

    epoch_apply = epoch_sub.add_parser(
        "apply", parents=[logging_flags],
        help="merge one delta onto a bundle and re-run only its dirty set",
    )
    epoch_apply.add_argument("dir", help="segment bundle directory")
    epoch_apply.add_argument(
        "--delta", metavar="FILE", required=True,
        help="repro-delta/1 file to apply (see 'repro-hunt epoch delta')",
    )
    epoch_apply.add_argument("--out", help="write findings JSONL here")
    epoch_apply.add_argument(
        "--profile", metavar="FILE",
        help="write the per-stage run manifest (JSON, with the epoch section)",
    )
    _add_executor_args(epoch_apply)
    _add_faults_args(epoch_apply)
    _add_cache_args(epoch_apply)
    _add_trace_arg(epoch_apply)
    _add_obs_args(epoch_apply)
    epoch_apply.set_defaults(func=_cmd_epoch)

    epoch_status = epoch_sub.add_parser(
        "status", parents=[logging_flags],
        help="show a bundle's applied-epoch history",
    )
    epoch_status.add_argument("dir", help="segment bundle directory")
    epoch_status.set_defaults(func=_cmd_epoch)

    epoch_delta = epoch_sub.add_parser(
        "delta", parents=[logging_flags],
        help="generate a deterministic scale-world epoch delta file",
    )
    epoch_delta.add_argument(
        "--out", metavar="FILE", required=True, help="delta file to write"
    )
    epoch_delta.add_argument(
        "--scale", type=_positive_int, required=True, metavar="N",
        help="population of the scale world the delta targets "
        "(must match the bundle written with 'segments write --scale N')",
    )
    epoch_delta.add_argument(
        "--active", type=_positive_int, default=200,
        help="active domains of the target scale world (default: 200)",
    )
    epoch_delta.add_argument("--seed", type=int, default=0)
    epoch_delta.add_argument(
        "--fraction", type=float, default=0.01,
        help="fraction of active domains the epoch churns (default: 0.01)",
    )
    epoch_delta.add_argument(
        "--epoch", type=_positive_int, default=1,
        help="epoch number (shifts the churn window; default: 1)",
    )
    epoch_delta.set_defaults(func=_cmd_epoch)

    cache = sub.add_parser(
        "cache", parents=[logging_flags], help="inspect or maintain the stage cache"
    )
    cache.add_argument(
        "action", choices=["stats", "clear", "gc"], help="what to do"
    )
    cache.add_argument(
        "--dir", default=None,
        help="cache directory (default: $REPRO_CACHE_DIR)",
    )
    cache.add_argument(
        "--max-bytes", type=int, default=None,
        help="byte budget for gc (least-recently-used entries beyond it are evicted)",
    )
    cache.set_defaults(func=_cmd_cache)

    runs = sub.add_parser(
        "runs", parents=[logging_flags], help="query the run ledger"
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    def _runs_parser(name: str, help_text: str) -> argparse.ArgumentParser:
        sp = runs_sub.add_parser(name, parents=[logging_flags], help=help_text)
        sp.add_argument(
            "--dir", default=None,
            help="ledger directory (default: $REPRO_LEDGER_DIR, "
            "else .repro-ledger/)",
        )
        sp.set_defaults(func=_cmd_runs)
        return sp

    runs_list = _runs_parser("list", "list recorded runs, oldest first")
    runs_list.add_argument(
        "--kind", choices=["pipeline", "arena"], default=None,
        help="only runs of this kind",
    )
    runs_list.add_argument(
        "--limit", type=_positive_int, default=None,
        help="show only the newest N runs",
    )

    runs_show = _runs_parser("show", "print one run's full record as JSON")
    runs_show.add_argument("run", help="run id (or unique prefix)")

    runs_diff = _runs_parser(
        "diff", "per-stage time/memory/cache deltas between two runs"
    )
    runs_diff.add_argument(
        "runs", nargs="*", metavar="RUN",
        help="two run ids (default: the two newest runs)",
    )

    runs_check = _runs_parser(
        "check",
        "regression sentinel: newest run vs the median of its matching-key "
        "history (nonzero exit on drift)",
    )
    runs_check.add_argument(
        "--run", default=None, help="candidate run id (default: newest)"
    )
    runs_check.add_argument(
        "--window", type=_positive_int, default=5,
        help="baseline window: last N matching-key prior runs (default: 5)",
    )
    runs_check.add_argument(
        "--min-baseline", type=_positive_int, default=None, dest="min_baseline",
        help="comparable prior runs required before the check has teeth "
        "(default: 1; fewer = vacuous pass)",
    )
    runs_check.add_argument(
        "--tolerance-total", type=float, default=None,
        help="fractional ceiling on total wall-time growth (default: 0.5)",
    )
    runs_check.add_argument(
        "--tolerance-stage", type=float, default=None,
        help="fractional ceiling on per-stage wall-time growth (default: 0.75)",
    )
    runs_check.add_argument(
        "--tolerance-memory", type=float, default=None,
        help="fractional ceiling on peak-RSS growth (default: 0.5)",
    )
    runs_check.add_argument(
        "--tolerance-cache", type=float, default=None,
        help="absolute ceiling on cache hit-rate drop (default: 0.25)",
    )
    runs_check.add_argument(
        "--tolerance-f1", type=float, default=None,
        help="absolute ceiling on arena mean-F1 drop (default: 0.05)",
    )
    runs_check.add_argument(
        "--min-stage-seconds", type=float, default=None, dest="min_stage_seconds",
        help="skip stages whose baseline wall time is below this "
        "(default: 0.05s; micro-stage jitter)",
    )

    runs_gc = _runs_parser("gc", "compact the ledger to the newest N runs")
    runs_gc.add_argument(
        "--keep", type=_positive_int, required=True,
        help="how many of the newest runs to keep",
    )

    metrics = sub.add_parser(
        "metrics", parents=[logging_flags],
        help="Prometheus/OpenMetrics text exposition",
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)
    metrics_export = metrics_sub.add_parser(
        "export", parents=[logging_flags],
        help="render a manifest's metrics registry and/or the ledger "
        "summary as OpenMetrics text",
    )
    metrics_export.add_argument(
        "--manifest", metavar="FILE", default=None,
        help="run manifest whose metrics section to export",
    )
    metrics_export.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="ledger whose summary gauges to export "
        "(default: $REPRO_LEDGER_DIR when it exists)",
    )
    metrics_export.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the exposition here instead of stdout",
    )
    metrics_export.add_argument(
        "--check", action="store_true", default=False,
        help="validate the exposition structurally; nonzero exit on errors",
    )
    metrics_export.set_defaults(func=_cmd_metrics)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    level = logging.ERROR if args.quiet else getattr(logging, args.log_level.upper())
    # Scope the handler to this invocation: the library stays silent when
    # imported, and repeated in-process calls (tests, REPL) never leave a
    # handler bound to a stale stderr behind.
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    root = logging.getLogger()
    previous_level = root.level
    root.addHandler(handler)
    root.setLevel(level)
    try:
        return args.func(args)
    finally:
        root.removeHandler(handler)
        root.setLevel(previous_level)


if __name__ == "__main__":
    raise SystemExit(main())
